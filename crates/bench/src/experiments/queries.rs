//! Table 5 (+ the indexed column): query performance over the Blast
//! provenance.
//!
//! Populates the provenance layouts (P1's S3 objects, P2's SimpleDB
//! items, and P3's SimpleDB items *with* the commit-time ancestry index)
//! with the captured Blast corpus, then runs Q.1–Q.4, reporting elapsed
//! virtual time, megabytes transferred, operation counts and the plan
//! the engine took — the exact columns of Table 5 plus the new
//! "indexed" rows.
//!
//! [`queries_report`] additionally measures Q.3/Q.4 through the SELECT
//! frontier-expansion plan and the index plan **on the same P3 store**,
//! asserts the result sets are identical, audits index ↔ base
//! consistency, and reports the op-count speedup — the CI gate behind
//! `repro -- queries`.

use cloudprov_cloud::{Era, Machine, RunContext};
use cloudprov_core::index::audit_index;
use cloudprov_core::{Layout, ProtocolConfig, StorageProtocol};
use cloudprov_query::{Mode, Plan, QueryEngine, QueryKind, QueryMetrics};
use cloudprov_workloads::{
    blast, collect, run_readserve, BlastParams, OfflineRun, ReadServeParams, ReadServeReport,
};

use crate::common::{Rig, Which};
use crate::uploader::upload;

/// One Table 5 row-half (one query on one backend).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Query id ("Q.1".."Q.4").
    pub query: &'static str,
    /// Backend ("S3 (P1)", "SimpleDB (P2)", "Indexed (P3)").
    pub backend: &'static str,
    /// The access path the engine executed.
    pub plan: String,
    /// Sequential execution cost.
    pub sequential: QueryMetrics,
    /// Parallel execution cost (None where parallelism does not apply).
    pub parallel: Option<QueryMetrics>,
    /// Result-set size (nodes).
    pub result_nodes: usize,
}

/// Select-vs-index measurement of one query on the same P3 store.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexComparison {
    /// Query id ("Q.3", "Q.4").
    pub query: &'static str,
    /// Ops through the SELECT frontier-expansion plan.
    pub select_ops: u64,
    /// Ops through the ancestry-index plan.
    pub index_ops: u64,
    /// Whether both plans returned the identical node set.
    pub identical: bool,
}

/// Everything `repro -- queries` prints and gates on.
#[derive(Clone, Debug)]
pub struct QueriesReport {
    /// The Table 5 rows (classic backends + indexed rows).
    pub rows: Vec<QueryResult>,
    /// Q.3/Q.4 select-vs-index on the P3 store.
    pub comparisons: Vec<IndexComparison>,
    /// Combined Q.3+Q.4 op ratio (select ÷ index).
    pub speedup: f64,
    /// What the cost-based planner picks per query on the P3 store once
    /// both paths have meter history, as `(query, plan, reason)`.
    pub planner: Vec<(String, String, String)>,
    /// Index ↔ base-record audit verdict.
    pub index_consistent: bool,
    /// Attribute pairs in the stored index.
    pub index_entries: usize,
}

impl QueriesReport {
    /// Gate violations: result-set mismatches, index inconsistency, or a
    /// speedup below `min_speedup`.
    pub fn violations(&self, min_speedup: f64) -> Vec<String> {
        let mut v = Vec::new();
        for c in &self.comparisons {
            if !c.identical {
                v.push(format!(
                    "{}: indexed plan returned a different result set",
                    c.query
                ));
            }
        }
        if !self.index_consistent {
            v.push("ancestry index diverged from base records".into());
        }
        if self.speedup < min_speedup {
            v.push(format!(
                "indexed Q.3+Q.4 speedup {:.2}x below the {min_speedup:.1}x gate",
                self.speedup
            ));
        }
        v
    }
}

/// The program whose outputs Q.3/Q.4 chase.
pub const PROGRAM: &str = "blastall";

fn ec2() -> RunContext {
    RunContext {
        location: cloudprov_cloud::ClientLocation::Ec2,
        era: Era::Sept2009,
        machine: Machine::Native,
    }
}

/// Populates the three layouts and returns their rigs + engines:
/// `(P1 scan, P2 select, P3 select+index)`.
pub fn seed(corpus: &OfflineRun) -> Vec<(Rig, QueryEngine)> {
    let quiesce = std::time::Duration::from_secs(15);
    [Which::P1, Which::P2, Which::P3]
        .into_iter()
        .map(|which| {
            let rig = Rig::new(which, ec2(), ProtocolConfig::default());
            upload(&rig, corpus, 26);
            // Let eventual consistency converge before measuring queries
            // (readers otherwise have to "try refreshing the data",
            // §4.3.1).
            rig.sim.sleep(quiesce);
            let store = rig.client.provenance_store().expect("provenance store");
            let engine = QueryEngine::new(&rig.env, store, "data");
            (rig, engine)
        })
        .collect()
}

fn run_rows(
    backend: &'static str,
    engine: &QueryEngine,
    corpus: &OfflineRun,
    queries: &[&'static str],
) -> Vec<QueryResult> {
    let mut out = Vec::new();
    if queries.contains(&"Q.1") {
        let seq = engine.q1_all(Mode::Sequential).expect("q1 seq");
        let par = matches!(seq.plan.plan, Some(Plan::S3Scan))
            .then(|| engine.q1_all(Mode::Parallel).expect("q1 par").metrics);
        out.push(QueryResult {
            query: "Q.1",
            backend,
            plan: plan_name(&seq.plan.plan),
            sequential: seq.metrics,
            parallel: par,
            result_nodes: seq.nodes.len(),
        });
    }
    if queries.contains(&"Q.2") {
        // Q.2: per-object average over a sample of files.
        let written: Vec<&cloudprov_workloads::OfflineFile> =
            corpus.files.iter().filter(|f| f.written).collect();
        let sample: Vec<&cloudprov_workloads::OfflineFile> = written
            .iter()
            .step_by((written.len() / 16).max(1))
            .copied()
            .collect();
        let mut total = QueryMetrics::default();
        let mut count = 0u32;
        let mut plan = String::new();
        for f in &sample {
            let key = f.path.trim_start_matches('/');
            if let Ok(r) = engine.q2_object(key) {
                total.elapsed += r.metrics.elapsed;
                total.ops += r.metrics.ops;
                total.bytes += r.metrics.bytes;
                count += 1;
                plan = plan_name(&r.plan.plan);
            }
        }
        let avg = QueryMetrics {
            elapsed: total.elapsed / count.max(1),
            ops: total.ops / u64::from(count.max(1)),
            bytes: total.bytes / u64::from(count.max(1)),
        };
        out.push(QueryResult {
            query: "Q.2",
            backend,
            plan,
            sequential: avg,
            parallel: None,
            result_nodes: count as usize,
        });
    }
    if queries.contains(&"Q.3") {
        let seq = engine
            .q3_outputs_of(PROGRAM, Mode::Sequential)
            .expect("q3 seq");
        let par = engine
            .q3_outputs_of(PROGRAM, Mode::Parallel)
            .expect("q3 par");
        out.push(QueryResult {
            query: "Q.3",
            backend,
            plan: plan_name(&seq.plan.plan),
            sequential: seq.metrics,
            parallel: Some(par.metrics),
            result_nodes: seq.nodes.len(),
        });
    }
    if queries.contains(&"Q.4") {
        let seq = engine
            .q4_descendants_of(PROGRAM, Mode::Sequential)
            .expect("q4 seq");
        let par = engine
            .q4_descendants_of(PROGRAM, Mode::Parallel)
            .expect("q4 par");
        out.push(QueryResult {
            query: "Q.4",
            backend,
            plan: plan_name(&seq.plan.plan),
            sequential: seq.metrics,
            parallel: Some(par.metrics),
            result_nodes: seq.nodes.len(),
        });
    }
    out
}

fn plan_name(plan: &Option<Plan>) -> String {
    plan.map(|p| p.name().to_string()).unwrap_or_default()
}

/// Runs all four queries on the classic backends plus the indexed rows.
pub fn table5(params: BlastParams) -> Vec<QueryResult> {
    queries_report(params).rows
}

/// The full experiment: Table 5 rows, select-vs-index comparison on one
/// P3 store, planner verdicts, and the index audit.
pub fn queries_report(params: BlastParams) -> QueriesReport {
    let corpus = collect(&blast(params));
    let rigs = seed(&corpus);
    let (p1_rig, p1_engine) = &rigs[0];
    let (_p2_rig, p2_engine) = &rigs[1];
    let (p3_rig, p3_engine) = &rigs[2];
    let _ = p1_rig;

    let mut rows = Vec::new();
    rows.extend(run_rows(
        "S3 (P1)",
        p1_engine,
        &corpus,
        &["Q.1", "Q.2", "Q.3", "Q.4"],
    ));
    rows.extend(run_rows(
        "SimpleDB (P2)",
        p2_engine,
        &corpus,
        &["Q.1", "Q.2", "Q.3", "Q.4"],
    ));

    // The P3 store: measure the SELECT plan and the index plan on the
    // SAME corpus, then let the planner choose with history in hand.
    let p3_select = p3_engine.with_plan_ref(Plan::SdbSelect);
    let p3_index = p3_engine.with_plan_ref(Plan::Index);
    let mut comparisons = Vec::new();
    let mut select_total = 0u64;
    let mut index_total = 0u64;
    let q3_sel = p3_select
        .q3_outputs_of(PROGRAM, Mode::Sequential)
        .expect("q3 select");
    let q3_idx = p3_index
        .q3_outputs_of(PROGRAM, Mode::Sequential)
        .expect("q3 index");
    comparisons.push(IndexComparison {
        query: "Q.3",
        select_ops: q3_sel.metrics.ops,
        index_ops: q3_idx.metrics.ops,
        identical: q3_sel.nodes == q3_idx.nodes,
    });
    select_total += q3_sel.metrics.ops;
    index_total += q3_idx.metrics.ops;
    let q4_sel = p3_select
        .q4_descendants_of(PROGRAM, Mode::Sequential)
        .expect("q4 select");
    let q4_idx = p3_index
        .q4_descendants_of(PROGRAM, Mode::Sequential)
        .expect("q4 index");
    comparisons.push(IndexComparison {
        query: "Q.4",
        select_ops: q4_sel.metrics.ops,
        index_ops: q4_idx.metrics.ops,
        identical: q4_sel.nodes == q4_idx.nodes,
    });
    select_total += q4_sel.metrics.ops;
    index_total += q4_idx.metrics.ops;

    // The indexed table rows reuse the sequential measurements taken for
    // the comparison; only the parallel column needs fresh runs.
    let q3_idx_par = p3_index
        .q3_outputs_of(PROGRAM, Mode::Parallel)
        .expect("q3 index par");
    let q4_idx_par = p3_index
        .q4_descendants_of(PROGRAM, Mode::Parallel)
        .expect("q4 index par");
    rows.push(QueryResult {
        query: "Q.3",
        backend: "Indexed (P3)",
        plan: plan_name(&q3_idx.plan.plan),
        sequential: q3_idx.metrics,
        parallel: Some(q3_idx_par.metrics),
        result_nodes: q3_idx.nodes.len(),
    });
    rows.push(QueryResult {
        query: "Q.4",
        backend: "Indexed (P3)",
        plan: plan_name(&q4_idx.plan.plan),
        sequential: q4_idx.metrics,
        parallel: Some(q4_idx_par.metrics),
        result_nodes: q4_idx.nodes.len(),
    });

    // Planner verdicts with measured history for both paths.
    let planner = [QueryKind::Q1, QueryKind::Q2, QueryKind::Q3, QueryKind::Q4]
        .into_iter()
        .map(|q| {
            let r = p3_engine.plan_for(q);
            (format!("{q:?}"), plan_name(&r.plan), r.reason)
        })
        .collect();

    let audit = audit_index(&p3_rig.env, &Layout::default());
    QueriesReport {
        rows,
        comparisons,
        speedup: select_total as f64 / (index_total.max(1)) as f64,
        planner,
        index_consistent: audit.consistent(),
        index_entries: audit.entries,
    }
}

/// The concurrent read-serving benchmark: hundreds of query tenants
/// over the shared [`AncestryCache`](cloudprov_query::AncestryCache)
/// while a live fleet keeps committing — the cached-path half of the
/// `repro -- queries` gate.
pub fn concurrent_report(small: bool, seed: u64) -> ReadServeReport {
    let params = if small {
        ReadServeParams::smoke(seed)
    } else {
        ReadServeParams {
            seed,
            ..ReadServeParams::default()
        }
    };
    run_readserve(&params)
}

/// Seed a committed `BENCH_queries*.json` was produced with — the
/// regression gate only compares like seeds. Substring-parsed like the
/// fleet baselines (offline workspace, no serde).
pub fn baseline_seed(json: &str) -> Option<u64> {
    json.split("\"seed\":")
        .nth(1)?
        .split(',')
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Cached-path speedup recorded in a committed `BENCH_queries*.json`.
pub fn baseline_cached_speedup(json: &str) -> Option<f64> {
    json.split("\"cached_speedup\":")
        .nth(1)?
        .split(',')
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Warm (cache-hit) p50 in microseconds from a committed baseline.
pub fn baseline_warm_p50_us(json: &str) -> Option<f64> {
    json.split("\"warm_p50_us\":")
        .nth(1)?
        .split(',')
        .next()?
        .trim()
        .parse()
        .ok()
}

fn json_escape_free(s: &str) -> String {
    s.chars().filter(|c| *c != '"' && *c != '\\').collect()
}

/// Machine-readable dump — the `BENCH_queries.json` trajectory file.
/// Hand-rolled JSON: the workspace is offline and serde is not among the
/// vendored crates.
pub fn to_json(
    small: bool,
    seed: u64,
    report: &QueriesReport,
    concurrent: &ReadServeReport,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench\": \"queries\",\n  \"seed\": {seed},\n  \"smoke\": {small},\n  \"index_consistent\": {},\n  \"index_entries\": {},\n  \"speedup_q3_q4_ops\": {:.3},\n",
        report.index_consistent, report.index_entries, report.speedup
    ));
    let c = concurrent;
    out.push_str(&format!(
        concat!(
            "  \"concurrent\": {{\n",
            "    \"query_tenants\": {}, \"writers\": {}, \"rounds\": {}, \"queries\": {},\n",
            "    \"hits\": {}, \"misses\": {}, \"bypasses\": {}, \"evictions\": {},\n",
            "    \"invalidations\": {}, \"installs\": {}, \"hit_rate\": {:.4},\n",
            "    \"warm_p50_us\": {:.1}, \"warm_p99_us\": {:.1},\n",
            "    \"cold_p50_us\": {:.1}, \"cold_p99_us\": {:.1},\n",
            "    \"cached_speedup\": {:.3}, \"verified\": {}, \"stale_results\": {},\n",
            "    \"verify_retries\": {}, \"query_throughput\": {:.4}\n",
            "  }},\n"
        ),
        c.query_tenants,
        c.writers,
        c.rounds,
        c.queries,
        c.cache.hits,
        c.cache.misses,
        c.cache.bypasses,
        c.cache.evictions,
        c.cache.invalidations,
        c.cache.installs,
        c.hit_rate,
        c.warm_p50.as_secs_f64() * 1e6,
        c.warm_p99.as_secs_f64() * 1e6,
        c.cold_p50.as_secs_f64() * 1e6,
        c.cold_p99.as_secs_f64() * 1e6,
        c.cached_speedup,
        c.verified,
        c.stale_results,
        c.verify_retries,
        c.query_throughput,
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"query\": \"{}\", \"backend\": \"{}\", \"plan\": \"{}\", ",
                "\"seq_s\": {:.4}, \"par_s\": {}, \"ops\": {}, \"mb\": {:.3}, \"nodes\": {}}}{}\n"
            ),
            r.query,
            json_escape_free(r.backend),
            r.plan,
            r.sequential.elapsed.as_secs_f64(),
            r.parallel
                .map(|p| format!("{:.4}", p.elapsed.as_secs_f64()))
                .unwrap_or_else(|| "null".into()),
            r.sequential.ops,
            r.sequential.bytes as f64 / 1e6,
            r.result_nodes,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    for (i, c) in report.comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"select_ops\": {}, \"index_ops\": {}, \"identical\": {}}}{}\n",
            c.query,
            c.select_ops,
            c.index_ops,
            c.identical,
            if i + 1 == report.comparisons.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n  \"planner\": [\n");
    for (i, (q, p, reason)) in report.planner.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{q}\", \"plan\": \"{p}\", \"reason\": \"{}\"}}{}\n",
            json_escape_free(reason),
            if i + 1 == report.planner.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_at_small_scale() {
        let report = queries_report(BlastParams::small());
        let rows = &report.rows;
        assert_eq!(rows.len(), 10, "4 + 4 classic rows + 2 indexed rows");
        let q = |query: &str, backend_prefix: &str| {
            rows.iter()
                .find(|r| r.query == query && r.backend.starts_with(backend_prefix))
                .unwrap()
                .clone()
        };
        // Q.1: SimpleDB uses far fewer ops than the S3 scan.
        assert!(q("Q.1", "SimpleDB").sequential.ops < q("Q.1", "S3").sequential.ops);
        // Q.3/Q.4: SimpleDB is selective; S3 scans everything.
        assert!(q("Q.3", "SimpleDB").sequential.ops < q("Q.3", "S3").sequential.ops);
        assert!(
            q("Q.3", "SimpleDB").sequential.elapsed < q("Q.3", "S3").sequential.elapsed,
            "indexed queries are faster"
        );
        // All three backends agree on result sizes for Q.3.
        assert_eq!(
            q("Q.3", "SimpleDB").result_nodes,
            q("Q.3", "S3").result_nodes
        );
        assert_eq!(
            q("Q.3", "Indexed").result_nodes,
            q("Q.3", "S3").result_nodes
        );
        // Parallelism helps the S3 scan.
        let s3q1 = q("Q.1", "S3");
        assert!(s3q1.parallel.unwrap().elapsed < s3q1.sequential.elapsed);
        // Plans are reported.
        assert_eq!(q("Q.1", "S3").plan, "scan");
        assert_eq!(q("Q.3", "SimpleDB").plan, "select");
        assert_eq!(q("Q.4", "Indexed").plan, "index");
        // Identity + consistency hold even at small scale (the speedup
        // gate is a full-scale claim, checked by `repro -- queries`).
        assert!(
            report.violations(1.0).is_empty(),
            "{:?}",
            report.violations(1.0)
        );
        let conc = run_readserve(&tiny_concurrent());
        let json = to_json(true, 42, &report, &conc);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The substring baselines round-trip out of our own emission.
        assert_eq!(baseline_seed(&json), Some(42));
        let speedup = baseline_cached_speedup(&json).expect("speedup recorded");
        assert!((speedup - conc.cached_speedup).abs() < 1e-3);
        assert!(baseline_warm_p50_us(&json).is_some());
        assert_eq!(baseline_seed("not json"), None);
        assert_eq!(baseline_cached_speedup("not json"), None);
    }

    fn tiny_concurrent() -> ReadServeParams {
        ReadServeParams {
            query_tenants: 6,
            queries_per_tenant: 2,
            writers: 2,
            programs: 2,
            rounds: 1,
            shards: 2,
            daemons: 1,
            seed: 1,
            profile: cloudprov_cloud::AwsProfile::instant(),
            ..ReadServeParams::default()
        }
    }

    #[test]
    fn concurrent_smoke_serves_warm_and_stays_truthful() {
        let r = run_readserve(&tiny_concurrent());
        assert_eq!(r.violations(), Vec::<String>::new(), "{r:?}");
        assert!(r.cache.hits > 0);
        assert_eq!(r.stale_results, 0);
    }
}
