//! Table 5: query performance over the Blast provenance.
//!
//! Populates both provenance layouts (P1's S3 objects, P2/P3's SimpleDB
//! items) with the captured Blast corpus, then runs Q.1–Q.4 sequentially
//! and in parallel, reporting elapsed virtual time, megabytes transferred
//! and operation counts — the exact columns of Table 5.

use cloudprov_cloud::{Era, Machine, RunContext};
use cloudprov_core::ProtocolConfig;
use cloudprov_core::StorageProtocol;
use cloudprov_query::{Mode, QueryEngine, QueryMetrics};
use cloudprov_workloads::{blast, collect, BlastParams, OfflineRun};

use crate::common::{Rig, Which};
use crate::uploader::upload;

/// One Table 5 row-half (one query on one backend).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Query id ("Q.1".."Q.4").
    pub query: &'static str,
    /// Backend ("S3 (P1)" or "SimpleDB (P2, P3)").
    pub backend: &'static str,
    /// Sequential execution cost.
    pub sequential: QueryMetrics,
    /// Parallel execution cost (None where parallelism does not apply).
    pub parallel: Option<QueryMetrics>,
    /// Result-set size (nodes).
    pub result_nodes: usize,
}

/// The program whose outputs Q.3/Q.4 chase.
pub const PROGRAM: &str = "blastall";

fn ec2() -> RunContext {
    RunContext {
        location: cloudprov_cloud::ClientLocation::Ec2,
        era: Era::Sept2009,
        machine: Machine::Native,
    }
}

/// Populates both layouts and returns engines `(s3_engine, db_engine)`
/// with their rigs (kept alive for the environment).
pub fn seed(corpus: &OfflineRun) -> ((Rig, QueryEngine), (Rig, QueryEngine)) {
    let quiesce = std::time::Duration::from_secs(15);
    let rig1 = Rig::new(Which::P1, ec2(), ProtocolConfig::default());
    upload(&rig1, corpus, 26);
    // Let eventual consistency converge before measuring queries (readers
    // otherwise have to "try refreshing the data", §4.3.1).
    rig1.sim.sleep(quiesce);
    let store1 = rig1.client.provenance_store().expect("p1 store");
    let engine1 = QueryEngine::new(&rig1.env, store1, "data");

    let rig2 = Rig::new(Which::P2, ec2(), ProtocolConfig::default());
    upload(&rig2, corpus, 26);
    rig2.sim.sleep(quiesce);
    let store2 = rig2.client.provenance_store().expect("p2 store");
    let engine2 = QueryEngine::new(&rig2.env, store2, "data");

    ((rig1, engine1), (rig2, engine2))
}

/// Runs all four queries on both backends.
pub fn table5(params: BlastParams) -> Vec<QueryResult> {
    let corpus = collect(&blast(params));
    let ((_rig1, s3_engine), (_rig2, db_engine)) = seed(&corpus);
    let mut out = Vec::new();

    for (backend, engine) in [("S3 (P1)", &s3_engine), ("SimpleDB (P2, P3)", &db_engine)] {
        // Q.1: dump everything.
        let seq = engine.q1_all(Mode::Sequential).expect("q1 seq");
        let par = (backend.starts_with("S3"))
            .then(|| engine.q1_all(Mode::Parallel).expect("q1 par").metrics);
        out.push(QueryResult {
            query: "Q.1",
            backend,
            sequential: seq.metrics,
            parallel: par,
            result_nodes: seq.nodes.len(),
        });

        // Q.2: per-object average over a sample of files.
        let written: Vec<&cloudprov_workloads::OfflineFile> =
            corpus.files.iter().filter(|f| f.written).collect();
        let sample: Vec<&cloudprov_workloads::OfflineFile> = written
            .iter()
            .step_by((written.len() / 16).max(1))
            .copied()
            .collect();
        let mut total = QueryMetrics::default();
        let mut count = 0u32;
        for f in &sample {
            let key = f.path.trim_start_matches('/');
            if let Ok(r) = engine.q2_object(key) {
                total.elapsed += r.metrics.elapsed;
                total.ops += r.metrics.ops;
                total.bytes += r.metrics.bytes;
                count += 1;
            }
        }
        let avg = QueryMetrics {
            elapsed: total.elapsed / count.max(1),
            ops: total.ops / u64::from(count.max(1)),
            bytes: total.bytes / u64::from(count.max(1)),
        };
        out.push(QueryResult {
            query: "Q.2",
            backend,
            sequential: avg,
            parallel: None,
            result_nodes: count as usize,
        });

        // Q.3: direct outputs of blastall.
        let seq = engine
            .q3_outputs_of(PROGRAM, Mode::Sequential)
            .expect("q3 seq");
        let par = engine
            .q3_outputs_of(PROGRAM, Mode::Parallel)
            .expect("q3 par");
        out.push(QueryResult {
            query: "Q.3",
            backend,
            sequential: seq.metrics,
            parallel: Some(par.metrics),
            result_nodes: seq.nodes.len(),
        });

        // Q.4: all descendants.
        let seq = engine
            .q4_descendants_of(PROGRAM, Mode::Sequential)
            .expect("q4 seq");
        let par = engine
            .q4_descendants_of(PROGRAM, Mode::Parallel)
            .expect("q4 par");
        out.push(QueryResult {
            query: "Q.4",
            backend,
            sequential: seq.metrics,
            parallel: Some(par.metrics),
            result_nodes: seq.nodes.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_at_small_scale() {
        let rows = table5(BlastParams::small());
        assert_eq!(rows.len(), 8);
        let q = |query: &str, backend_prefix: &str| {
            rows.iter()
                .find(|r| r.query == query && r.backend.starts_with(backend_prefix))
                .unwrap()
                .clone()
        };
        // Q.1: SimpleDB uses far fewer ops than the S3 scan.
        assert!(q("Q.1", "SimpleDB").sequential.ops < q("Q.1", "S3").sequential.ops);
        // Q.3/Q.4: SimpleDB is selective; S3 scans everything.
        assert!(q("Q.3", "SimpleDB").sequential.ops < q("Q.3", "S3").sequential.ops);
        assert!(
            q("Q.3", "SimpleDB").sequential.elapsed < q("Q.3", "S3").sequential.elapsed,
            "indexed queries are faster"
        );
        // Both backends agree on result sizes for Q.3.
        assert_eq!(
            q("Q.3", "SimpleDB").result_nodes,
            q("Q.3", "S3").result_nodes
        );
        // Parallelism helps the S3 scan.
        let s3q1 = q("Q.1", "S3");
        assert!(s3q1.parallel.unwrap().elapsed < s3q1.sequential.elapsed);
    }
}
