//! Chaos table: the §3 recovery invariants under explored failure
//! schedules, per protocol — the machine-checked companion to Table 1.
//!
//! For every protocol configuration the deterministic explorer
//! (`cloudprov-chaos`) sweeps a seed range; each seed is a complete,
//! replayable failure schedule (service faults + a crash-point kill +
//! recovery). The table reports how much detectable damage P1/P2 accrue
//! under parallel uploads — and that P3's WAL keeps every guarantee —
//! plus the minimal failing seed for replay when an invariant breaks.

use std::ops::Range;

use cloudprov_chaos::{explore_seed, ExplorationReport, Explorer, ProtocolSummary, SeedOutcome};

use crate::Which;

/// One protocol's sweep, summarized.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Aggregated counters over the seed range.
    pub summary: ProtocolSummary,
    /// Full per-seed outcomes (for drill-down and replay).
    pub report: ExplorationReport,
}

/// Sweeps `seeds` for all four protocol configurations.
pub fn sweep(seeds: Range<u64>) -> Vec<ChaosRow> {
    Explorer::new(seeds)
        .run_all()
        .into_iter()
        .map(|report| ChaosRow {
            summary: report.summary(),
            report,
        })
        .collect()
}

/// Replays one seed twice and returns both outcomes — the determinism
/// proof `repro -- chaos` prints (identical schedules and verdicts).
pub fn replay_twice(which: Which, seed: u64) -> (SeedOutcome, SeedOutcome) {
    (explore_seed(which, seed), explore_seed(which, seed))
}

/// The aimed group-commit crash schedules (`p3:commit:group:*`): each
/// kills the daemon at a named step occurrence inside a cross-
/// transaction group commit and checks the recommit converged. Appended
/// to the seeded sweep so the sweep's coverage of the new crash points
/// never depends on where the seeds' crossing draws happen to land.
pub use cloudprov_chaos::group_crash_schedules as group_commit_schedules;

/// The aimed change-feed crash schedules (`p3:notify:*`): each kills a
/// feed-enabled daemon at a named notify step and checks the delivery
/// contract end to end across failover — every committed transaction
/// reaches a live subscription at least once, in sequence order, with
/// duplicates allowed and gaps forbidden.
pub use cloudprov_chaos::notify_crash_schedules;

/// The aimed content-addressed-store crash schedules (`client:cas:*`):
/// each kills a pipelined client inside the speculative ancestor
/// publish and checks the publish-before-reference ordering — every
/// acknowledged flush recommits on a fresh daemon, dead flushes never
/// half-log, and anything the crash stranded in the CAS is unreferenced
/// garbage rather than a dangling WAL reference.
pub use cloudprov_chaos::cas_crash_schedules;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_protocols_and_stays_invariant_clean() {
        let rows = sweep(0..6);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.summary.seeds, 6);
            assert_eq!(
                row.summary.failing_seeds, 0,
                "{:?}: {:?}",
                row.summary.protocol, row.summary.minimal_failure
            );
        }
    }

    #[test]
    fn replays_are_identical() {
        let (a, b) = replay_twice(Which::P3, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn group_commit_schedules_all_converge() {
        for o in group_commit_schedules() {
            assert!(
                o.violations().is_empty(),
                "{}: {:?}",
                o.step,
                o.violations()
            );
        }
    }

    #[test]
    fn notify_schedules_all_converge() {
        for o in notify_crash_schedules() {
            assert!(
                o.violations().is_empty(),
                "{}: {:?}",
                o.step,
                o.violations()
            );
        }
    }

    #[test]
    fn cas_schedules_all_converge() {
        for o in cas_crash_schedules() {
            assert!(
                o.violations().is_empty(),
                "{}: {:?}",
                o.step,
                o.violations()
            );
        }
    }
}
