//! Reproduces every table and figure of "Provenance for the Cloud"
//! (FAST 2010) on the simulated substrate, printing measured values next
//! to the paper's reported numbers.
//!
//! ```text
//! repro [table1|table2|table3|table4|table5|fig3|fig4|umlcheck|ablations|chaos|fleet|all] [--small]
//! ```
//!
//! `--small` (alias `--smoke`) runs scaled-down workloads (for smoke
//! tests); the default is the paper's full scale. `chaos` sweeps the
//! deterministic failure-schedule explorer over a fixed seed range per
//! protocol and exits non-zero on any recovery-invariant violation (the
//! CI gate); `chaos --seed N` replays one seed verbosely. `fleet` sweeps
//! clients x shards x daemons over the sharded multi-tenant commit plane
//! (`crates/fleet`), prints the scaling table, proves determinism by
//! re-running a cell, gates every cell's throughput against the
//! committed `BENCH_fleet*.json` trajectory (>20% regression fails),
//! writes the regenerated file, and exits non-zero on any fleet
//! invariant violation.

use std::time::Instant;

use cloudprov_bench::experiments::{
    ablations, chaos, fleet, micro, props, queries, services, umlcheck, workload_runs,
};
use cloudprov_bench::{overhead_pct, Which};
use cloudprov_cloud::{ClientLocation, Era, Machine, RunContext};
use cloudprov_workloads::BlastParams;

fn hr(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        " no"
    }
}

fn table1() {
    hr("Table 1: Properties Comparison (paper: coupling no/no/yes; causal yes/yes/yes;\n         efficient query no/yes/yes)");
    println!(
        "{:<10} {:>10} {:>16} {:>16} {:>13} {:>10}",
        "Protocol", "Coupling", "Causal(design)", "Causal(paral.)", "Persistence", "Query"
    );
    for row in props::table1() {
        println!(
            "{:<10} {:>10} {:>16} {:>16} {:>13} {:>10}",
            row.which.name(),
            mark(row.coupling),
            mark(row.causal_designed),
            mark(row.causal_parallel),
            mark(row.persistence),
            mark(row.efficient_query),
        );
    }
    println!("\nNote: 'Causal(design)' is the protocol as specified (ancestors first /");
    println!("transactional); 'Causal(paral.)' is the paper's parallel implementation,");
    println!("which \u{a7}5 notes violates causal ordering for P1 and P2.");
}

fn table2(small: bool) {
    let bytes = if small { 2 << 20 } else { 50 << 20 };
    hr(&format!(
        "Table 2: Upload {} MB of provenance to each service (paper @50MB: S3 324.7 s,\n         SimpleDB 537.1 s, SQS 36.2 s)",
        bytes >> 20
    ));
    let ctx = RunContext {
        location: ClientLocation::Ec2,
        era: Era::Sept2009,
        machine: Machine::Native,
    };
    println!(
        "{:<10} {:>12} {:>10} {:>12}",
        "Service", "Time (s)", "Ops", "Connections"
    );
    for r in services::table2(bytes, ctx) {
        println!(
            "{:<10} {:>12.1} {:>10} {:>12}",
            r.service,
            r.elapsed.as_secs_f64(),
            r.ops,
            r.connections
        );
    }
    println!("\nConcurrency scaling (SimpleDB should plateau near 40; S3/SQS keep scaling):");
    let sweep_bytes = if small { 1 << 20 } else { 8 << 20 };
    for svc in ["S3", "SimpleDB", "SQS"] {
        let pts = services::sweep(svc, sweep_bytes, &[10, 40, 150], ctx);
        let line: Vec<String> = pts
            .iter()
            .map(|p| format!("{}conn={:.1}s", p.connections, p.elapsed.as_secs_f64()))
            .collect();
        println!("  {:<10} {}", svc, line.join("  "));
    }
}

fn micro_tables(small: bool) {
    let params = if small {
        BlastParams::small()
    } else {
        BlastParams::default()
    };
    let corpus = micro::capture(params);
    hr("Figure 3: Microbenchmark elapsed times (paper: P3 lowest overhead 32.6%, P2\n          highest 78.9%, P1 between; UML follows the same pattern)");
    for (label, ctx) in micro::contexts() {
        let results = micro::run(&corpus, ctx, 26);
        let base = results[0].elapsed.as_secs_f64();
        println!("\n  [{label}]");
        println!("  {:<8} {:>12} {:>12}", "Config", "Time (s)", "Overhead");
        for r in &results {
            println!(
                "  {:<8} {:>12.1} {:>11.1}%",
                r.which.name(),
                r.elapsed.as_secs_f64(),
                overhead_pct(base, r.elapsed.as_secs_f64())
            );
        }
        if label == "EC2" {
            hr("Table 3: Data transfer and operation overheads (paper: S3fs 713.09 MB/617 ops;\n         P1 +0.31%/+270.7%; P2 +0.42%/+100.2%; P3 +0.45%/+116.7%)");
            let base_mb = results[0].mb;
            let base_ops = results[0].client_ops as f64;
            println!(
                "{:<8} {:>16} {:>12} {:>12} {:>12}",
                "Config", "Data (MB)", "MB ovh", "Ops", "Ops ovh"
            );
            for r in &results {
                println!(
                    "{:<8} {:>16.2} {:>11.2}% {:>12} {:>11.1}%",
                    r.which.name(),
                    r.mb,
                    overhead_pct(base_mb, r.mb),
                    r.client_ops,
                    overhead_pct(base_ops, r.client_ops as f64)
                );
            }
        }
    }
}

fn fig4(small: bool) {
    hr("Figure 4: Workload elapsed times (paper: overheads <10% in 29 of 36 results,\n          max 36%; Dec/Jan runs 4-44.5% faster than September)");
    let results = workload_runs::figure4(!small);
    let mut within10 = 0;
    let mut total = 0;
    let mut max_ovh: f64 = 0.0;
    for era in [Era::Sept2009, Era::DecJan2010] {
        for loc in ["EC2", "LOCAL"] {
            println!(
                "\n  [{} / {}]",
                match era {
                    Era::Sept2009 => "Sept 2009",
                    Era::DecJan2010 => "Dec/Jan 2010",
                },
                loc
            );
            println!(
                "  {:<9} {:>10} {:>10} {:>10} {:>10}   overheads",
                "Workload", "S3fs", "P1", "P2", "P3"
            );
            for wl in workload_runs::Workload::ALL {
                let cells: Vec<_> = results
                    .iter()
                    .filter(|r| {
                        r.workload == wl
                            && r.context.era == era
                            && (r.context.location == ClientLocation::Ec2) == (loc == "EC2")
                    })
                    .collect();
                let base = cells
                    .iter()
                    .find(|c| c.which == Which::S3fs)
                    .map(|c| c.elapsed.as_secs_f64())
                    .unwrap_or(0.0);
                let t = |w: Which| {
                    cells
                        .iter()
                        .find(|c| c.which == w)
                        .map(|c| c.elapsed.as_secs_f64())
                        .unwrap_or(0.0)
                };
                let ovh: Vec<String> = [Which::P1, Which::P2, Which::P3]
                    .iter()
                    .map(|w| {
                        let pct = overhead_pct(base, t(*w));
                        total += 1;
                        if pct < 10.0 {
                            within10 += 1;
                        }
                        if pct > max_ovh {
                            max_ovh = pct;
                        }
                        format!("{pct:+.1}%")
                    })
                    .collect();
                println!(
                    "  {:<9} {:>10.0} {:>10.0} {:>10.0} {:>10.0}   {}",
                    wl.name(),
                    base,
                    t(Which::P1),
                    t(Which::P2),
                    t(Which::P3),
                    ovh.join(" ")
                );
            }
        }
    }
    println!(
        "\n  Summary: {within10}/{total} protocol results within 10% of S3fs (paper: 29/36);\n  max overhead {max_ovh:.1}% (paper: 36%)."
    );
}

fn table4(small: bool) {
    hr("Table 4: Cost per benchmark in USD (paper: Nightly 1.05/1.05/1.05/1.06,\n         Blast 0.37/0.39/0.38/0.40, Challenge 0.27/0.29/0.29/0.30)");
    let results = workload_runs::table4(!small);
    println!(
        "{:<9} {:>8} {:>8} {:>8} {:>8}",
        "Workload", "S3fs", "P1", "P2", "P3"
    );
    for wl in [
        workload_runs::Workload::Nightly,
        workload_runs::Workload::Blast,
        workload_runs::Workload::Challenge,
    ] {
        let c = |w: Which| {
            results
                .iter()
                .find(|r| r.workload == wl && r.which == w)
                .map(|r| r.cost_usd)
                .unwrap_or(0.0)
        };
        println!(
            "{:<9} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            wl.name(),
            c(Which::S3fs),
            c(Which::P1),
            c(Which::P2),
            c(Which::P3)
        );
    }
}

fn print_query_rows(rows: &[cloudprov_bench::experiments::queries::QueryResult]) {
    println!(
        "{:<5} {:<16} {:<7} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "Query", "Backend", "Plan", "Seq (s)", "Par (s)", "MB", "Ops", "Nodes"
    );
    for r in rows {
        println!(
            "{:<5} {:<16} {:<7} {:>10.3} {:>10} {:>10.2} {:>8} {:>8}",
            r.query,
            r.backend,
            r.plan,
            r.sequential.elapsed.as_secs_f64(),
            r.parallel
                .map(|p| format!("{:.3}", p.elapsed.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            r.sequential.bytes as f64 / 1e6,
            r.sequential.ops,
            r.result_nodes
        );
    }
}

fn table5(small: bool) {
    hr("Table 5: Query performance on Blast provenance (paper: Q.1 S3 48.57 s seq /\n         7.04 s par / 1671 ops vs SimpleDB 0.83 s / 13 ops; Q.2 comparable;\n         Q.3/Q.4 SimpleDB ~10x faster, 37/87 ops)");
    let params = if small {
        BlastParams::small()
    } else {
        BlastParams::default()
    };
    print_query_rows(&queries::table5(params));
}

/// The read-path gate: Table 5 + the indexed column, result-set identity
/// between plans, the index ↔ base audit, and the op-count speedup.
/// Returns whether every gate held.
fn queries_gate(small: bool, seed: u64) -> bool {
    hr("Queries: layered read path (GraphSource backends behind the cost-based planner).\n         Q.3/Q.4 ride the commit-time ancestry index; result sets must be\n         identical to the SELECT frontier-expansion path on the same store.");
    let params = if small {
        BlastParams::small()
    } else {
        BlastParams::default()
    };
    // The speedup is a full-scale claim; the smoke grid only requires
    // the index not to be worse.
    let min_speedup = if small { 1.0 } else { 5.0 };
    let report = queries::queries_report(params);
    print_query_rows(&report.rows);
    println!("\nSelect vs index on the same P3 store (sequential ops):");
    println!(
        "  {:<5} {:>12} {:>11} {:>9}   identical",
        "Query", "Select ops", "Index ops", "Speedup"
    );
    for c in &report.comparisons {
        println!(
            "  {:<5} {:>12} {:>11} {:>8.1}x   {}",
            c.query,
            c.select_ops,
            c.index_ops,
            c.select_ops as f64 / c.index_ops.max(1) as f64,
            if c.identical { "yes" } else { "NO" }
        );
    }
    println!(
        "\nCombined Q.3+Q.4 speedup: {:.1}x (gate: >= {min_speedup:.1}x). Index audit: {} ({} entries).",
        report.speedup,
        if report.index_consistent {
            "consistent"
        } else {
            "INCONSISTENT"
        },
        report.index_entries
    );
    println!("\nPlanner verdicts on the P3 store (with meter history for both paths):");
    for (q, p, reason) in &report.planner {
        println!("  {q}: {p} ({reason})");
    }
    let mut violations = report.violations(min_speedup);

    // The read tier at scale: hundreds of tenants over the shared
    // ancestry cache while the fleet keeps committing. The cached-path
    // speedup is an absolute gate (a warm hit never touches the store);
    // staleness and ground-truth divergence gate at zero.
    let conc = queries::concurrent_report(small, seed);
    println!(
        "\nConcurrent read serving: {} query tenants (mixed Q.1-Q.4) against a live fleet\n({} writers x {} live rounds committing mid-phase), one shared ancestry cache:",
        conc.query_tenants, conc.writers, conc.rounds
    );
    println!(
        "  queries {} (Q.1 {} / Q.2 {} / Q.3 {} / Q.4 {}), {:.2} q/s virtual",
        conc.queries,
        conc.q_counts[0],
        conc.q_counts[1],
        conc.q_counts[2],
        conc.q_counts[3],
        conc.query_throughput
    );
    println!(
        "  cache: {} hits / {} misses / {} bypasses ({:.0}% hit rate), {} invalidations, {} evictions",
        conc.cache.hits,
        conc.cache.misses,
        conc.cache.bypasses,
        conc.hit_rate * 100.0,
        conc.cache.invalidations,
        conc.cache.evictions
    );
    println!(
        "  warm p50/p99 {:.1}/{:.1} us ({} samples) vs cold p50/p99 {:.1}/{:.1} us ({} samples)",
        conc.warm_p50.as_secs_f64() * 1e6,
        conc.warm_p99.as_secs_f64() * 1e6,
        conc.warm_samples,
        conc.cold_p50.as_secs_f64() * 1e6,
        conc.cold_p99.as_secs_f64() * 1e6,
        conc.cold_samples
    );
    println!(
        "  cached-path speedup {:.1}x (gate: >= 5.0x); {} hits verified against the uncached plan, {} stale ({} settle retries)",
        conc.cached_speedup, conc.verified, conc.stale_results, conc.verify_retries
    );
    violations.extend(conc.violations());
    if conc.cached_speedup < 5.0 {
        violations.push(format!(
            "cached-path speedup {:.2}x below the 5.0x gate",
            conc.cached_speedup
        ));
    }
    for v in &violations {
        println!("violation: {v}");
    }

    let json = queries::to_json(small, seed, &report, &conc);
    let path = if small {
        "BENCH_queries_smoke.json"
    } else {
        "BENCH_queries.json"
    };
    // Perf-regression gate vs the committed trajectory, fleet rules:
    // two-sided (the speedup may not shrink below 0.8x baseline, the
    // warm p50 may not creep past 1.2x), like seeds only, and a failed
    // gate parks its evidence instead of lowering the floor.
    let mut perf_ok = true;
    let committed = std::fs::read_to_string(path).ok();
    let baseline_seed = committed.as_deref().and_then(queries::baseline_seed);
    let foreign_seed = baseline_seed.is_some_and(|b| b != seed);
    match committed
        .filter(|_| baseline_seed == Some(seed))
        .as_deref()
        .and_then(|s| {
            Some((
                queries::baseline_cached_speedup(s)?,
                queries::baseline_warm_p50_us(s),
            ))
        }) {
        Some((base_speedup, base_warm)) => {
            let ratio = conc.cached_speedup / base_speedup.max(1e-9);
            let speed_ok = ratio >= 0.8;
            let warm_us = conc.warm_p50.as_secs_f64() * 1e6;
            let (warm_desc, warm_ok) = match base_warm {
                Some(old) if old > 0.0 => (
                    format!(
                        "warm p50 {:.1} -> {:.1} us ({:.2}x)",
                        old,
                        warm_us,
                        warm_us / old
                    ),
                    warm_us / old <= 1.2,
                ),
                // A zero baseline cannot regress upward from nothing
                // measurable: hits cost zero virtual time by design.
                _ => (
                    format!("warm p50 {warm_us:.1} us (baseline 0)"),
                    warm_us <= 1.0,
                ),
            };
            perf_ok = speed_ok && warm_ok;
            println!(
                "\nPerf gate vs committed {path}: speedup {:.1}x -> {:.1}x ({:.2}x, floor 0.8x); {}   {}",
                base_speedup,
                conc.cached_speedup,
                ratio,
                warm_desc,
                if perf_ok { "PASS" } else { "FAIL" }
            );
        }
        None => println!(
            "\n(no committed {path} with a matching seed and a concurrent section — perf gate \
             skipped; this run's file seeds it)"
        ),
    }
    let gate_ok = violations.is_empty() && perf_ok;
    // Protect the committed floor: regressed numbers and foreign seeds
    // park their evidence beside it, never over it.
    let out_path = if foreign_seed {
        format!("{path}.seed{seed}")
    } else if gate_ok {
        path.to_string()
    } else {
        format!("{path}.rejected")
    };
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("Wrote {out_path}."),
        Err(e) => println!("Could not write {out_path}: {e}"),
    }
    gate_ok
}

fn uml(small: bool) {
    hr("\u{a7}5.2 UML impact (paper: nightly 419 s -> 528 s, Blast 650 s -> 1322 s)");
    println!(
        "{:<9} {:>12} {:>12} {:>8}",
        "Workload", "Native (s)", "UML (s)", "Factor"
    );
    for c in umlcheck::run(!small) {
        println!(
            "{:<9} {:>12.0} {:>12.0} {:>7.2}x",
            c.workload.name(),
            c.native.as_secs_f64(),
            c.uml.as_secs_f64(),
            c.factor()
        );
    }
}

fn ablation_report() {
    hr("Ablations of \u{a7}4 design choices");
    let corpus = ablations::small_corpus();

    println!("\nP3 WAL message size (8 KB is the SQS cap the paper works within):");
    println!("  {:<10} {:>10} {:>12}", "Size (B)", "Messages", "Time (s)");
    for p in ablations::wal_message_size(&corpus, &[2048, 4096, 8192]) {
        println!(
            "  {:<10} {:>10} {:>12.1}",
            p.value,
            p.ops,
            p.elapsed.as_secs_f64()
        );
    }

    println!("\nP2 SimpleDB batch size (25 is the service cap):");
    println!("  {:<10} {:>10} {:>12}", "Items", "DB calls", "Time (s)");
    for p in ablations::db_batch_size(&corpus, &[1, 5, 25]) {
        println!(
            "  {:<10} {:>10} {:>12.1}",
            p.value,
            p.ops,
            p.elapsed.as_secs_f64()
        );
    }

    let (strict, parallel) = ablations::ordering_cost(&corpus);
    println!(
        "\nP1 ancestor ordering: strict {:.1} s vs parallel {:.1} s ({:+.0}% — the\nlatency the paper's implementation avoided by forfeiting causal ordering)",
        strict.as_secs_f64(),
        parallel.as_secs_f64(),
        overhead_pct(parallel.as_secs_f64(), strict.as_secs_f64())
    );

    let (separate, metadata) = ablations::provenance_as_metadata();
    println!(
        "\nProvenance-as-metadata (rejected in \u{a7}4.3.1): after DELETE, separate object\nsurvives: {}; metadata survives: {} (the persistence violation)",
        mark(separate),
        mark(metadata)
    );

    let versioned = ablations::versioned_corpus();
    let (eventual_rate, strict_rate) = ablations::consistency_detection_rate(2_000);
    println!(
        "\nConsistency models (\u{a7}2.3.1): read-your-write goes stale {:.1}% of the\ntime under AWS-style eventual consistency vs {:.1}% under Azure-style strict\nconsistency (why the protocols carry detection machinery)",
        eventual_rate * 100.0,
        strict_rate * 100.0
    );

    let (per_version, per_object, ambiguous) = ablations::row_per_version_vs_object(&versioned);
    println!(
        "\nOne-row-per-version vs per-object (\u{a7}4.3.2): {per_version} version items vs\n{per_object} merged items; {ambiguous} objects would lose version attribution"
    );

    println!("\nPipelined vs blocking flush (Blast, client-perceived seconds):");
    println!(
        "  {:<6} {:>12} {:>12} {:>8}",
        "Proto", "Blocking", "Pipelined", "Win"
    );
    for which in [cloudprov_bench::Which::P1, cloudprov_bench::Which::P3] {
        let (blocking, pipelined) = ablations::flush_pipelining(which);
        println!(
            "  {:<6} {:>12.1} {:>12.1} {:>7.0}%",
            which.name(),
            blocking.as_secs_f64(),
            pipelined.as_secs_f64(),
            -overhead_pct(blocking.as_secs_f64(), pipelined.as_secs_f64())
        );
    }
}

/// The fixed seed range CI sweeps per protocol (`--small` uses a prefix).
const CHAOS_SEEDS: u64 = 48;
const CHAOS_SEEDS_SMALL: u64 = 12;

/// Replays one seed verbosely; returns whether its invariants held.
fn chaos_replay(which: Which, seed: u64) -> bool {
    let (first, second) = chaos::replay_twice(which, seed);
    println!("\n[{which} seed {seed}] plan: {:?}", first.plan);
    match &first.crash {
        Some(c) => println!("  crash: crossing {} at '{}'", c.crossing, c.step),
        None => println!("  crash: none fired ({} crossings)", first.crossings),
    }
    println!(
        "  promised: {:?}\n  coupling: {:?}\n  dangling: {}  broken promises: {}  wal left: {}  temps left: {}",
        first.promised,
        first.coupling,
        first.dangling_edges,
        first.broken_promises,
        first.wal_leftover,
        first.temp_leftover
    );
    let violations = first.violations();
    if violations.is_empty() {
        println!("  verdict: PASS");
    } else {
        println!("  verdict: FAIL {violations:?}");
    }
    assert_eq!(
        first, second,
        "replay diverged — the schedule is supposed to be a pure function of the seed"
    );
    println!("  replay: identical schedule and verdict on re-run");
    violations.is_empty()
}

fn chaos_table(small: bool, seed_arg: Option<u64>) -> bool {
    hr("Chaos: explored failure schedules + recovery invariants (machine-checked Table 1:\n       P1/P2 accrue detectable damage under parallel uploads; P3's WAL never does)");
    if let Some(seed) = seed_arg {
        let mut all_ok = true;
        for which in Which::ALL {
            all_ok &= chaos_replay(which, seed);
        }
        return all_ok;
    }
    let seeds = 0..if small {
        CHAOS_SEEDS_SMALL
    } else {
        CHAOS_SEEDS
    };
    println!(
        "Seed range {}..{} per protocol; every seed is a complete failure schedule\n(service faults + crash-point kill + WAL-handoff recovery).\n",
        seeds.start, seeds.end
    );
    println!(
        "{:<9} {:>6} {:>8} {:>7} {:>9} {:>9} {:>8} {:>6} {:>6} {:>6}   verdict",
        "Protocol",
        "Seeds",
        "Crashes",
        "Faulty",
        "Coupl.vio",
        "Dangling",
        "Broken",
        "WAL",
        "Temps",
        "IdxDiv"
    );
    let rows = chaos::sweep(seeds);
    let mut all_ok = true;
    for row in &rows {
        let s = &row.summary;
        let ok = s.failing_seeds == 0;
        all_ok &= ok;
        println!(
            "{:<9} {:>6} {:>8} {:>7} {:>9} {:>9} {:>8} {:>6} {:>6} {:>6}   {}",
            s.protocol.name(),
            s.seeds,
            s.crashes,
            s.faulty_seeds,
            s.coupling_violations,
            s.dangling_edges,
            s.broken_promises,
            s.wal_leftover,
            s.temp_leftover,
            s.index_inconsistencies,
            if ok { "PASS" } else { "FAIL" }
        );
        if let Some((seed, violations)) = &s.minimal_failure {
            println!(
                "          minimal failing seed {seed}: {violations:?}\n          replay with: repro -- chaos --seed {seed}"
            );
        }
    }
    // The replay proof the acceptance criteria ask for: re-run one seed
    // that actually crashed and show the identical schedule + verdict.
    let sample = rows
        .iter()
        .find_map(|r| {
            r.summary
                .minimal_failure
                .as_ref()
                .map(|(seed, _)| (r.summary.protocol, *seed))
                .or_else(|| {
                    r.report
                        .seeds
                        .clone()
                        .zip(&r.report.outcomes)
                        .find(|(_, o)| o.crash.is_some())
                        .map(|(seed, _)| (r.summary.protocol, seed))
                })
        })
        .unwrap_or((Which::P3, 0));
    // Verdict already counted in `all_ok` via the sweep; this re-run is
    // the determinism proof.
    let _ = chaos_replay(sample.0, sample.1);
    println!(
        "\nNote: 'Coupl.vio' and 'Dangling' are DETECTED violations — expected for P1/P2\n(no write-time coupling, parallel uploads); the PASS/FAIL verdict only gates the\nguarantees each protocol actually makes. P3 must stay at zero everywhere."
    );
    // Aimed group-commit schedules: kill the daemon at each named
    // p3:commit:group:* step inside a cross-transaction group and check
    // that recovery recommits every member exactly once.
    println!(
        "\nAimed group-commit crash schedules (daemon killed mid-group; recovery daemon\nrecommits after the visibility window):"
    );
    println!(
        "  {:<26} {:>4} {:>10} {:>9} {:>7} {:>5} {:>6} {:>6}   verdict",
        "Step", "Occ", "Committed", "DoubleCmt", "Uncoup", "WAL", "Temps", "IdxDiv"
    );
    for o in chaos::group_commit_schedules() {
        let violations = o.violations();
        let ok = violations.is_empty();
        all_ok &= ok;
        println!(
            "  {:<26} {:>4} {:>10} {:>9} {:>7} {:>5} {:>6} {:>6}   {}",
            o.step,
            o.occurrence,
            o.unique_committed,
            o.double_commits,
            o.uncoupled,
            o.wal_leftover,
            o.temp_leftover,
            o.index_inconsistencies,
            if ok { "PASS" } else { "FAIL" }
        );
        for v in violations {
            println!("          violation: {v}");
        }
    }
    // Aimed change-feed schedules: kill a feed-enabled daemon at each
    // p3:notify:* step and check the delivery contract across failover —
    // at-least-once, sequence-ordered, duplicates allowed, gaps never.
    println!(
        "\nAimed change-feed crash schedules (daemon killed around stage/publish/watermark;\na live subscription rides both daemons):"
    );
    println!(
        "  {:<20} {:>4} {:>10} {:>8} {:>8} {:>6} {:>6}   verdict",
        "Step", "Occ", "Committed", "FeedMiss", "FeedDup", "Gaps", "Unpub"
    );
    for o in chaos::notify_crash_schedules() {
        let violations = o.violations();
        let ok = violations.is_empty();
        all_ok &= ok;
        println!(
            "  {:<20} {:>4} {:>10} {:>8} {:>8} {:>6} {:>6}   {}",
            o.step,
            o.occurrence,
            o.unique_committed,
            o.feed_missing,
            o.feed_duplicates,
            o.feed_gaps,
            o.feed_unpublished,
            if ok { "PASS" } else { "FAIL" }
        );
        for v in violations {
            println!("          violation: {v}");
        }
    }
    println!(
        "\n('FeedDup' is allowed by the at-least-once contract — the watermark-crash row\nis SUPPOSED to show duplicates; 'FeedMiss', 'Gaps' and 'Unpub' must be zero.)"
    );
    // Aimed content-addressed-store schedules: kill a pipelined client
    // at each client:cas:* step inside the speculative ancestor publish
    // and check the publish-before-reference ordering — acked flushes
    // all recommit, dead flushes never half-log, stranded CAS content
    // is unreferenced garbage rather than a dangling WAL reference.
    println!(
        "\nAimed CAS-publish crash schedules (pipelined client killed inside the\nspeculative ancestor publish; a fresh daemon drains what it logged):"
    );
    println!(
        "  {:<22} {:>4} {:>6} {:>8} {:>10} {:>9} {:>9} {:>6}   verdict",
        "Step", "Occ", "Acked", "Backlog", "Committed", "StrndReg", "StrndDat", "Dangl"
    );
    for o in chaos::cas_crash_schedules() {
        let violations = o.violations();
        let ok = violations.is_empty();
        all_ok &= ok;
        println!(
            "  {:<22} {:>4} {:>6} {:>8} {:>10} {:>9} {:>9} {:>6}   {}",
            o.step,
            o.occurrence,
            o.acked_flushes,
            o.wal_backlog,
            o.unique_committed,
            o.stranded_registry,
            o.stranded_data,
            o.dangling_ancestors,
            if ok { "PASS" } else { "FAIL" }
        );
        for v in violations {
            println!("          violation: {v}");
        }
    }
    println!(
        "\n('StrndReg'/'StrndDat' count CAS content no acknowledged flush references —\nallowed, re-publishable garbage; the register#8 row is SUPPOSED to strand.\n'Dangl' (dangling ancestor references) and half-logged flushes must be zero.)"
    );
    all_ok
}

/// The fleet scaling table over the sharded multi-tenant commit plane.
/// Returns whether every cell was free of invariant violations.
/// `trace_out` writes the first cell's Chrome trace JSON (Perfetto-
/// loadable) to the given path.
fn fleet_table(small: bool, seed: u64, mode: fleet::SweepMode, trace_out: Option<&str>) -> bool {
    hr("Fleet: clients x shards x daemons over the sharded commit plane (throughput\n       must rise with daemons at fixed shards; zero invariant violations)");
    println!(
        "Seed {seed}; every cell replays seeded testkit scripts through pipelined,\nthrottled P3 sessions routed onto shard WALs; a lease-holding daemon pool\ncommits asynchronously as GROUPS. p50/p99 are client flush->WAL-durable;\nCp50/Cp99 are the commit plane's own WAL-durable->committed latency, and\nPk50 its waiting component (WAL-durable->daemon pickup) — the part push\ndelivery eliminates. The final row is the unsaturated latency probe."
    );
    println!(
        "Delivery mode: {} (fallback poll {}).\n",
        if mode.push {
            "push — workers ride WAL doorbells and publish the change feed"
        } else {
            "polling — workers sleep the poll interval between sweeps"
        },
        match mode.poll_ms {
            Some(ms) => format!("{ms} ms via --poll-ms"),
            None => "driver default".to_string(),
        }
    );
    println!(
        "{:>7} {:>7} {:>7} {:>5} {:>7} {:>9} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>9}   verdict",
        "Clients",
        "Shards",
        "Daemons",
        "Mode",
        "Txns",
        "Commits",
        "Thr(tx/s)",
        "p50(ms)",
        "p99(ms)",
        "Cp50(s)",
        "Cp99(s)",
        "Pk50(s)",
        "Elapsed(s)",
        "Cost($)"
    );
    let mut reports = fleet::sweep(small, seed, mode);
    reports.push(fleet::latency_probe(small, seed, mode));
    let mut all_ok = true;
    for r in &reports {
        let violations = r.violations();
        let ok = violations.is_empty();
        all_ok &= ok;
        println!(
            "{:>7} {:>7} {:>7} {:>5} {:>7} {:>9} {:>10.2} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.2} {:>10.1} {:>9.4}   {}",
            r.clients,
            r.shards,
            r.daemons,
            if r.push { "push" } else { "poll" },
            r.logged_txns,
            r.unique_committed,
            r.throughput,
            r.p50.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
            r.commit_p50.as_secs_f64(),
            r.commit_p99.as_secs_f64(),
            r.pickup_p50.as_secs_f64(),
            r.elapsed.as_secs_f64(),
            r.total_cost_usd,
            if ok { "PASS" } else { "FAIL" }
        );
        for v in violations {
            println!("          violation: {v}");
        }
        for f in &r.failed_checks {
            println!("          failed check: {f}");
        }
    }
    // Where any flush tail lives: the per-flush latency split. The
    // admission wait is backpressure by design and deliberately NOT a
    // component of p50/p99 above; queue dwell + delta upload compose
    // the sampled total, so a tail here points at the guilty stage.
    println!(
        "\nFlush latency split (ms) — admission wait is backpressure (reported apart);\nqueue dwell + delta upload compose the flush total:"
    );
    println!(
        "  {:>7} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Clients", "Shards", "Daemons", "Adm p50", "Adm p99", "Que p99", "Upl p99", "Tot p99"
    );
    for r in &reports {
        println!(
            "  {:>7} {:>7} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            r.clients,
            r.shards,
            r.daemons,
            r.admission_p50.as_secs_f64() * 1e3,
            r.admission_p99.as_secs_f64() * 1e3,
            r.queue_p99.as_secs_f64() * 1e3,
            r.upload_p99.as_secs_f64() * 1e3,
            r.p99.as_secs_f64() * 1e3,
        );
    }
    // Where the commit latency lives: the critical-path breakdown of
    // the median-latency traced txn, per cell. Exclusive self-time per
    // phase — dwell (WAL-durable -> daemon pickup), lease (pickup ->
    // group formation), then the group-commit phases — telescopes to
    // the root span, so Sum reconciles with Cp50 by construction. Feed
    // is the post-commit publish, outside the commit window. Drop is
    // doorbells shed by the bounded pool queue; Evict is client dedupe-
    // set evictions (both previously unsurfaced).
    println!(
        "\nCommit critical path (s) — per-phase self-time of the median traced txn;\nphase sum must reconcile with Cp50 (trace gate):"
    );
    println!(
        "  {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6}",
        "Clients",
        "Shards",
        "Daemons",
        "Dwell",
        "Lease",
        "Copy",
        "Db",
        "Index",
        "Ack",
        "Untr",
        "Sum",
        "Cp50",
        "Drop",
        "Evict"
    );
    for r in &reports {
        let b = r.breakdown.unwrap_or_default();
        println!(
            "  {:>7} {:>7} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>6} {:>6}",
            r.clients,
            r.shards,
            r.daemons,
            b.dwell.as_secs_f64(),
            b.lease.as_secs_f64(),
            b.copy.as_secs_f64(),
            b.db.as_secs_f64(),
            b.index.as_secs_f64(),
            b.ack.as_secs_f64(),
            b.untraced.as_secs_f64(),
            b.commit_sum().as_secs_f64(),
            r.commit_p50.as_secs_f64(),
            r.pool.dropped,
            r.dedupe_evictions,
        );
    }
    // Trace gate: connectivity (zero orphan spans) and root fidelity
    // (root duration == measured commit latency, +/- 1 sim tick) per
    // cell. Both are also folded into violations(), so a failure here
    // already flipped the cell's verdict above.
    let trace_ok = reports
        .iter()
        .all(|r| r.trace_orphans == 0 && r.trace_root_mismatches == 0);
    println!(
        "\nTrace gate: zero orphan spans, every root == measured commit latency — {} ({} spans across {} cells)",
        if trace_ok { "PASS" } else { "FAIL" },
        reports.iter().map(|r| r.trace_spans).sum::<u64>(),
        reports.len()
    );
    // Push-mode latency gate, on the probe cell: the doorbell must put
    // the waiting component of commit latency (WAL-durable -> daemon
    // pickup) under a second — polling physically cannot (its dwell is
    // ~poll_interval/2). The gate reads the probe because the scaling
    // cells saturate the plane by design, where pickup measures the
    // backlog, not the delivery path. Commit latency itself keeps the
    // 2009 service-time floor (~790 ms SQS send, ~700 ms S3 copy,
    // ~310 ms/item SimpleDB writes: several seconds per group) in every
    // mode — the perf gate below pins it against the baseline instead.
    if mode.push {
        let mut push_ok = true;
        for r in reports.iter().filter(|r| fleet::is_latency_probe(r)) {
            let pk = r.pickup_p50.as_secs_f64();
            if pk >= 1.0 {
                push_ok = false;
                println!(
                    "push gate: probe {}c/{}s/{}d pickup p50 {:.2} s >= 1 s   FAIL",
                    r.clients, r.shards, r.daemons, pk
                );
            }
        }
        println!(
            "\nPush-mode gate: WAL-durable->pickup p50 < 1 s on the latency probe — {}",
            if push_ok { "PASS" } else { "FAIL" }
        );
        all_ok &= push_ok;
    }
    // Flush-latency gate: with the content-addressed ancestor store in
    // the flush path, a ticket settles once its *delta* is durable —
    // CAS-covered batches resolve at submit — so the client-perceived
    // flush p50 must sit far under the old ~830 ms upload-bound floor
    // on every scaling cell. The probe is exempt only because it is
    // gated separately (it measures commit latency, not throughput; its
    // flush path is identical).
    let mut flush_ok = true;
    for r in reports.iter().filter(|r| !fleet::is_latency_probe(r)) {
        let p50 = r.p50.as_secs_f64() * 1e3;
        if p50 >= 100.0 {
            flush_ok = false;
            println!(
                "flush gate: cell {}c/{}s/{}d flush p50 {:.1} ms >= 100 ms   FAIL",
                r.clients, r.shards, r.daemons, p50
            );
        }
    }
    println!(
        "\nFlush-latency gate: flush p50 < 100 ms on every scaling cell — {}",
        if flush_ok { "PASS" } else { "FAIL" }
    );
    all_ok &= flush_ok;
    // Headline scaling claim: at the fixed shard count of the daemon
    // sweep, throughput must rise with daemon count.
    let daemon_sweep: Vec<&cloudprov_workloads::FleetReport> = {
        let (shards, clients) = (reports[0].shards, reports[0].clients);
        reports
            .iter()
            .filter(|r| r.shards == shards && r.clients == clients)
            .collect()
    };
    if daemon_sweep.len() >= 2 {
        let first = daemon_sweep.first().unwrap();
        let last = daemon_sweep.last().unwrap();
        let scaled = last.throughput > first.throughput;
        println!(
            "\nDaemon scaling at {} shards: {} daemon(s) -> {:.2} tx/s, {} daemons -> {:.2} tx/s ({})",
            first.shards,
            first.daemons,
            first.throughput,
            last.daemons,
            last.throughput,
            if scaled { "scales" } else { "DOES NOT SCALE" }
        );
        all_ok &= scaled;
    }
    // Per-tenant attribution for the first cell.
    let first = &reports[0];
    println!(
        "\nPer-tenant bill of the first cell ({} clients over {} tenants):",
        first.clients, first.tenants
    );
    println!("  {:>7} {:>8} {:>10} {:>10}", "Tenant", "Ops", "MB", "USD");
    for t in &first.per_tenant {
        println!(
            "  {:>7} {:>8} {:>10.2} {:>10.4}",
            format!("t{}", t.tenant),
            t.ops,
            t.mb,
            t.usd
        );
    }
    // Determinism proof: the first cell re-run must reproduce exactly.
    let again = fleet::rerun_first(small, seed, mode);
    let identical = again == reports[0];
    println!(
        "\nDeterminism: first cell re-run is {} (same seed -> same table).",
        if identical {
            "bit-identical"
        } else {
            "DIFFERENT"
        }
    );
    all_ok &= identical;
    // The machine-readable perf trajectory. The smoke grid writes its
    // own file so a CI run can never clobber the committed full-sweep
    // baseline (the two grids are not comparable cell-for-cell).
    let json = fleet::to_json(seed, small, &reports);
    let path = if small {
        "BENCH_fleet_smoke.json"
    } else {
        "BENCH_fleet.json"
    };
    // Perf-regression gate: before overwriting, compare each cell's
    // throughput against the committed trajectory. More than a 20%
    // regression in any cell fails the run — the committed JSON is the
    // floor future perf work is measured against, not just a log.
    let mut perf_ok = true;
    let committed = std::fs::read_to_string(path).ok();
    // A missing or unparsable baseline is reseeded in place; only a
    // healthy baseline of a DIFFERENT seed is preserved (side-written),
    // since overwriting it would silently disable the gate for every
    // future default-seed run.
    let baseline_seed = committed.as_deref().and_then(fleet::baseline_seed);
    let foreign_seed = baseline_seed.is_some_and(|b| b != seed);
    // A polling run (or an overridden poll interval) measures a different
    // plane than the committed push-mode baseline: skip the gate and park
    // the evidence beside the floor rather than against it.
    let foreign_mode = !mode.push || mode.poll_ms.is_some();
    match committed
        .filter(|_| baseline_seed == Some(seed) && !foreign_mode)
        .map(|s| {
            (
                fleet::baseline_throughputs(&s),
                fleet::baseline_commit_p50s(&s),
            )
        })
        .filter(|(base, _)| base.len() == reports.len())
    {
        Some((base, base_p50s)) => {
            println!(
                "\nPerf gate vs committed {path} (cell fails under 0.8x baseline throughput\nor over 1.2x baseline commit p50 — the latency win is part of the floor):"
            );
            for (i, (r, old)) in reports.iter().zip(&base).enumerate() {
                let ratio = if *old > 0.0 {
                    r.throughput / old
                } else {
                    f64::INFINITY
                };
                let thr_ok = ratio >= 0.8;
                let p50_ms = r.commit_p50.as_secs_f64() * 1e3;
                let (lat, lat_ok) = match base_p50s.get(i) {
                    Some(old_ms) if *old_ms > 0.0 => {
                        let lr = p50_ms / old_ms;
                        (
                            format!("Cp50 {:.1}->{:.1} s ({lr:.2}x)", old_ms / 1e3, p50_ms / 1e3),
                            lr <= 1.2,
                        )
                    }
                    _ => ("Cp50 unbaselined".to_string(), true),
                };
                let ok = thr_ok && lat_ok;
                perf_ok &= ok;
                println!(
                    "  {:>3}c/{:>2}s/{:>2}d: {:>7.3} -> {:>7.3} tx/s ({:.2}x); {}   {}",
                    r.clients,
                    r.shards,
                    r.daemons,
                    old,
                    r.throughput,
                    ratio,
                    lat,
                    if ok { "PASS" } else { "FAIL" }
                );
            }
        }
        None => println!(
            "\n(no committed {path} with matching seed/grid — perf gate skipped; this run's \
             file seeds it)"
        ),
    }
    all_ok &= perf_ok;
    // Protect the committed floor: a failed gate must not replace it
    // with the regressed numbers (a later run would silently pass
    // against the lowered baseline), and a run with a DIFFERENT seed
    // must not replace it either (the next default-seed run would see
    // a seed mismatch, skip the gate, and the floor would be gone).
    // Both park their evidence next to it instead.
    let out_path = if foreign_seed {
        format!("{path}.seed{seed}")
    } else if foreign_mode {
        format!("{path}.poll")
    } else if perf_ok {
        path.to_string()
    } else {
        format!("{path}.rejected")
    };
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("Wrote {out_path} ({} cells).", reports.len()),
        Err(e) => println!("Could not write {out_path}: {e}"),
    }
    // The sampled cell's full trace, in Chrome trace_event format —
    // load it at https://ui.perfetto.dev to walk a txn's span tree.
    if let Some(path) = trace_out {
        match reports[0].trace_json.as_deref() {
            Some(trace) => match std::fs::write(path, trace) {
                Ok(()) => println!(
                    "Wrote {path} ({} spans of the first cell; Perfetto-loadable).",
                    reports[0].trace_spans
                ),
                Err(e) => println!("Could not write {path}: {e}"),
            },
            None => println!("No trace sampled for the first cell; {path} not written."),
        }
    }
    all_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small" || a == "--smoke");
    let seed_arg = args.iter().position(|a| a == "--seed").map(|i| {
        args.get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--seed requires a decimal u64 argument");
                std::process::exit(2);
            })
    });
    let poll_ms = args.iter().position(|a| a == "--poll-ms").map(|i| {
        args.get(i + 1)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--poll-ms requires a decimal u64 argument (milliseconds)");
                std::process::exit(2);
            })
    });
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--trace-out requires a file path argument");
            std::process::exit(2);
        })
    });
    let fleet_mode = fleet::SweepMode {
        push: !args.iter().any(|a| a == "--polling" || a == "--no-push"),
        poll_ms,
    };
    let cmd = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).is_none_or(|prev| {
                    prev != "--seed" && prev != "--poll-ms" && prev != "--trace-out"
                })
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    let t0 = Instant::now();
    match cmd.as_str() {
        "table1" => table1(),
        "table2" => table2(small),
        "table3" | "fig3" => micro_tables(small),
        "table4" => table4(small),
        "table5" => table5(small),
        "queries" => {
            if !queries_gate(small, seed_arg.unwrap_or(0)) {
                eprintln!(
                    "\nqueries gate failed: plan disagreement, index inconsistency, or lost speedup (see above)"
                );
                std::process::exit(1);
            }
        }
        "fig4" => fig4(small),
        "umlcheck" => uml(small),
        "ablations" => ablation_report(),
        "chaos" => {
            if !chaos_table(small, seed_arg) {
                eprintln!("\nchaos exploration found invariant violations (see table above)");
                std::process::exit(1);
            }
        }
        "fleet" => {
            if !fleet_table(
                small,
                seed_arg.unwrap_or(0),
                fleet_mode,
                trace_out.as_deref(),
            ) {
                eprintln!(
                    "\nfleet sweep found invariant violations or lost scaling (see table above)"
                );
                std::process::exit(1);
            }
        }
        "all" => {
            table1();
            table2(small);
            micro_tables(small);
            fig4(small);
            table4(small);
            table5(small);
            uml(small);
            ablation_report();
            if !queries_gate(true, seed_arg.unwrap_or(0)) {
                eprintln!("\nqueries gate failed (see table above)");
                std::process::exit(1);
            }
            if !chaos_table(small, None) {
                eprintln!("\nchaos exploration found invariant violations (see table above)");
                std::process::exit(1);
            }
            if !fleet_table(true, 0, fleet_mode, trace_out.as_deref()) {
                eprintln!("\nfleet sweep found invariant violations (see table above)");
                std::process::exit(1);
            }
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; use table1|table2|table3|table4|table5|queries|fig3|fig4|umlcheck|ablations|chaos|fleet|all [--small|--smoke] [--seed N] [--polling] [--poll-ms N] [--trace-out PATH]"
            );
            std::process::exit(2);
        }
    }
    eprintln!(
        "\n[repro completed in {:.1} s wall time]",
        t0.elapsed().as_secs_f64()
    );
}
