//! The §5.1 microbenchmark upload tool.
//!
//! "We ran the Blast benchmark on an unmodified PASS system and captured
//! the provenance. We then built a tool that uploaded the data objects and
//! their provenance to the cloud using each protocol" — and, for the
//! baseline, just the data. Unlike the per-close PA-S3fs path, the tool
//! knows the whole corpus up front, so P2 batches items globally (25 per
//! call) and P3 ships everything as one large WAL transaction; this is
//! what reproduces Table 3's operation counts.

use std::collections::BTreeMap;
use std::time::Duration;

use cloudprov_cloud::{Actor, Blob, Metadata, Op, Service};
use cloudprov_core::{object_metadata, FlushBatch, FlushObject, StorageProtocol};
use cloudprov_pass::wire;
use cloudprov_pass::Uuid;
use cloudprov_workloads::OfflineRun;

use crate::common::{Rig, Which};

/// Outcome of one microbenchmark upload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UploadReport {
    /// Protocol used.
    pub which: Which,
    /// Client-side elapsed virtual time (excludes the commit daemon).
    pub elapsed: Duration,
    /// Client-side operations (Table 3; excludes the commit daemon).
    pub client_ops: u64,
    /// Client-side megabytes transferred (Table 3).
    pub mb_transferred: f64,
}

/// Uploads a captured run through the rig's protocol, mimicking the
/// paper's bulk tool. Returns the client-side report; P3's commit daemon
/// is drained afterwards (asynchronous, not in the elapsed time).
pub fn upload(rig: &Rig, run: &OfflineRun, concurrency: usize) -> UploadReport {
    let which = rig.client.protocol();
    let sim = rig.sim.clone();
    let t0 = sim.now();
    match which {
        Which::S3fs => {
            // Data objects only (files the workload wrote; read-only
            // inputs have no cloud object).
            let tasks: Vec<_> = run
                .files
                .iter()
                .filter(|f| f.written)
                .map(|f| {
                    let s3 = rig.env.s3().clone();
                    let key = f.path.trim_start_matches('/').to_string();
                    let blob = Blob::synthetic(f.size, f.fingerprint);
                    move || {
                        s3.put("data", &key, blob, Metadata::new()).expect("put");
                    }
                })
                .collect();
            sim.run_parallel(concurrency, tasks);
        }
        Which::P1 => {
            // One provenance object per UUID. Version chains of the same
            // object append: first version PUTs, later versions GET +
            // append + PUT, as §4.3.1 specifies. Parallel across UUIDs.
            let mut by_uuid: BTreeMap<Uuid, Vec<&cloudprov_pass::FlushNode>> = BTreeMap::new();
            for n in &run.nodes {
                by_uuid.entry(n.id.uuid).or_default().push(n);
            }
            let files: BTreeMap<String, (u64, u64)> = run
                .files
                .iter()
                .filter(|f| f.written)
                .map(|f| (f.path.clone(), (f.size, f.fingerprint)))
                .collect();
            // One data object per file: attach the payload to the FINAL
            // version node of each path.
            let last_node_of: BTreeMap<String, cloudprov_pass::PNodeId> = run
                .nodes
                .iter()
                .filter(|n| n.kind.is_persistent())
                .filter_map(|n| n.name.clone().map(|p| (p, n.id)))
                .collect();
            // A provenance chunk plus, for the node closing a file, that
            // file's upload info: (key, size, fingerprint, id).
            type FileUpload = (String, u64, u64, cloudprov_pass::PNodeId);
            let tasks: Vec<_> = by_uuid
                .into_iter()
                .map(|(uuid, nodes)| {
                    let s3 = rig.env.s3().clone();
                    let prov_key = format!("p/{uuid}");
                    let chunks: Vec<(Vec<u8>, Option<FileUpload>)> = nodes
                        .iter()
                        .map(|n| {
                            let bytes = wire::encode(&n.records).to_vec();
                            let file = n.name.as_ref().and_then(|name| {
                                let is_last = last_node_of.get(name) == Some(&n.id);
                                files.get(name).filter(|_| is_last).map(|(size, fp)| {
                                    (name.trim_start_matches('/').to_string(), *size, *fp, n.id)
                                })
                            });
                            (bytes, file)
                        })
                        .collect();
                    move || {
                        let mut first = true;
                        // The tool is this object's only writer, so it can
                        // guard the GET+append against eventually
                        // consistent (stale or missing) reads with its own
                        // accumulated copy.
                        let mut accumulated: Vec<u8> = Vec::new();
                        for (bytes, file) in chunks {
                            if !first {
                                // GET + append for later versions; fall
                                // back to the local copy on a stale read.
                                match s3.get("prov", &prov_key) {
                                    Ok(existing) => {
                                        let remote =
                                            existing.blob.as_inline().expect("inline provenance");
                                        if remote.len() > accumulated.len() {
                                            accumulated = remote.to_vec();
                                        }
                                    }
                                    Err(_) => { /* not yet visible */ }
                                }
                            }
                            accumulated.extend_from_slice(&bytes);
                            s3.put(
                                "prov",
                                &prov_key,
                                Blob::from(accumulated.clone()),
                                Metadata::new(),
                            )
                            .expect("prov put");
                            first = false;
                            if let Some((key, size, fp, id)) = file {
                                s3.put(
                                    "data",
                                    &key,
                                    Blob::synthetic(size, fp),
                                    object_metadata(id),
                                )
                                .expect("data put");
                            }
                        }
                    }
                })
                .collect();
            sim.run_parallel(concurrency, tasks);
        }
        Which::P2 | Which::P3 => {
            // Feed the whole corpus as one flush batch: P2 batches items
            // globally; P3 logs one large transaction.
            let files: BTreeMap<String, (u64, u64)> = run
                .files
                .iter()
                .filter(|f| f.written)
                .map(|f| (f.path.clone(), (f.size, f.fingerprint)))
                .collect();
            let last_node_of: BTreeMap<String, cloudprov_pass::PNodeId> = run
                .nodes
                .iter()
                .filter(|n| n.kind.is_persistent())
                .filter_map(|n| n.name.clone().map(|p| (p, n.id)))
                .collect();
            let objects: Vec<FlushObject> = run
                .nodes
                .iter()
                .map(|n| {
                    let file = n
                        .name
                        .as_ref()
                        .filter(|name| last_node_of.get(*name) == Some(&n.id))
                        .and_then(|name| files.get(name).map(|fi| (name, fi)));
                    match file {
                        Some((name, (size, fp))) if n.kind.is_persistent() => FlushObject::file(
                            n.clone(),
                            name.trim_start_matches('/').to_string(),
                            Blob::synthetic(*size, *fp),
                        ),
                        _ => FlushObject::provenance_only(n.clone()),
                    }
                })
                .collect();
            rig.client
                .flush(FlushBatch { objects })
                .expect("bulk flush");
        }
    }
    let elapsed = sim.now() - t0;
    let usage = rig.env.usage();
    let report = UploadReport {
        which,
        elapsed,
        client_ops: usage.client_ops(),
        mb_transferred: usage.client_mb_transferred(),
    };
    rig.drain_commits();
    report
}

/// Ops-by-kind summary for diagnostics.
pub fn op_breakdown(rig: &Rig) -> Vec<(String, u64)> {
    let usage = rig.env.usage();
    usage
        .ops
        .iter()
        .map(|((a, s, o), st)| (format!("{a:?}/{}/{o:?}", Service::name(*s)), st.count))
        .collect()
}

/// Returns client PUT count against the data bucket (sanity checks).
pub fn data_puts(rig: &Rig) -> u64 {
    rig.env
        .usage()
        .get(Actor::Client, Service::ObjectStore, Op::Put)
        .count
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::AwsProfile;
    use cloudprov_core::ProtocolConfig;
    use cloudprov_workloads::{blast, collect, BlastParams};

    fn small_run() -> OfflineRun {
        collect(&blast(BlastParams::small()))
    }

    #[test]
    fn baseline_uploads_each_file_once() {
        let run = small_run();
        let rig = Rig::with_profile(
            Which::S3fs,
            AwsProfile::instant(),
            ProtocolConfig::default(),
        );
        let report = upload(&rig, &run, 8);
        let written = run.files.iter().filter(|f| f.written).count();
        assert_eq!(report.client_ops as usize, written);
        assert_eq!(
            rig.env.s3().peek_count("data", ""),
            written,
            "every written file object present"
        );
    }

    #[test]
    fn p1_uploads_provenance_objects_per_uuid() {
        let run = small_run();
        let rig = Rig::with_profile(Which::P1, AwsProfile::instant(), ProtocolConfig::default());
        let report = upload(&rig, &run, 8);
        let uuids: std::collections::BTreeSet<_> = run.nodes.iter().map(|n| n.id.uuid).collect();
        assert_eq!(rig.env.s3().peek_count("prov", "p/"), uuids.len());
        assert!(report.client_ops > run.files.len() as u64 * 2);
    }

    #[test]
    fn p2_batches_globally() {
        let run = small_run();
        let rig = Rig::with_profile(Which::P2, AwsProfile::instant(), ProtocolConfig::default());
        upload(&rig, &run, 8);
        let batches = rig
            .env
            .usage()
            .get(Actor::Client, Service::Database, Op::DbPut)
            .count;
        let expected = run.nodes.len().div_ceil(25) as u64;
        assert_eq!(batches, expected, "25-item global batching");
    }

    #[test]
    fn p3_commits_everything_via_daemon() {
        let run = small_run();
        let rig = Rig::with_profile(Which::P3, AwsProfile::instant(), ProtocolConfig::default());
        upload(&rig, &run, 8);
        assert_eq!(
            rig.env.s3().peek_count("data", "tmp/"),
            0,
            "daemon cleaned temp objects"
        );
        assert_eq!(
            rig.env.s3().peek_count("data", ""),
            run.files.iter().filter(|f| f.written).count(),
            "all written files committed to final names"
        );
        assert!(rig.env.sdb().peek_item_count("provenance") > 0);
    }

    #[test]
    fn protocols_transfer_slightly_more_than_baseline() {
        let run = small_run();
        let base = {
            let rig = Rig::with_profile(
                Which::S3fs,
                AwsProfile::instant(),
                ProtocolConfig::default(),
            );
            upload(&rig, &run, 8).mb_transferred
        };
        for which in [Which::P1, Which::P2, Which::P3] {
            let rig = Rig::with_profile(which, AwsProfile::instant(), ProtocolConfig::default());
            let mb = upload(&rig, &run, 8).mb_transferred;
            let pct = crate::common::overhead_pct(base, mb);
            assert!(pct > 0.0, "{which:?} adds provenance bytes");
            assert!(
                pct < 15.0,
                "{which:?} data overhead small (Table 3), got {pct:.2}%"
            );
        }
    }
}
