//! Shared harness plumbing: protocol construction, run contexts, and
//! result formatting helpers.

use std::sync::Arc;
use std::time::Duration;

use cloudprov_cloud::{AwsProfile, CloudEnv, RunContext};
use cloudprov_core::{ProtocolConfig, S3fsBaseline, StorageProtocol, P1, P2, P3};
use cloudprov_sim::Sim;

/// Which storage configuration a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Which {
    /// Provenance-free baseline.
    S3fs,
    /// Protocol 1 (S3 only).
    P1,
    /// Protocol 2 (S3 + SimpleDB).
    P2,
    /// Protocol 3 (S3 + SimpleDB + SQS WAL).
    P3,
}

impl Which {
    /// All four configurations, baseline first.
    pub const ALL: [Which; 4] = [Which::S3fs, Which::P1, Which::P2, Which::P3];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Which::S3fs => "S3fs",
            Which::P1 => "P1",
            Which::P2 => "P2",
            Which::P3 => "P3",
        }
    }
}

/// A provisioned run environment: simulation, cloud, protocol, and (for
/// P3) its daemons.
pub struct Rig {
    /// The simulation.
    pub sim: Sim,
    /// The cloud environment.
    pub env: CloudEnv,
    /// The protocol under test.
    pub protocol: Arc<dyn StorageProtocol>,
    /// P3's commit daemon (None otherwise).
    pub commit_daemon: Option<Arc<cloudprov_core::CommitDaemon>>,
}

impl Rig {
    /// Provisions a fresh environment for `which` under `context`.
    pub fn new(which: Which, context: RunContext, config: ProtocolConfig) -> Rig {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::calibrated(context));
        Self::over(sim, env, which, config)
    }

    /// Provisions with an explicit profile (tests use
    /// [`AwsProfile::instant`]).
    pub fn with_profile(which: Which, profile: AwsProfile, config: ProtocolConfig) -> Rig {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, profile);
        Self::over(sim, env, which, config)
    }

    fn over(sim: Sim, env: CloudEnv, which: Which, config: ProtocolConfig) -> Rig {
        let (protocol, commit_daemon): (Arc<dyn StorageProtocol>, _) = match which {
            Which::S3fs => (Arc::new(S3fsBaseline::new(&env, config)) as _, None),
            Which::P1 => (Arc::new(P1::new(&env, config)) as _, None),
            Which::P2 => (Arc::new(P2::new(&env, config)) as _, None),
            Which::P3 => {
                let p3 = P3::new(&env, config, "wal-bench");
                let daemon = Arc::new(p3.commit_daemon());
                (Arc::new(p3) as _, Some(daemon))
            }
        };
        Rig {
            sim,
            env,
            protocol,
            commit_daemon,
        }
    }

    /// Drains P3's WAL (no-op for other protocols). Call before reading
    /// final state or costs.
    pub fn drain_commits(&self) {
        if let Some(d) = &self.commit_daemon {
            d.run_until_idle().expect("commit daemon drain");
        }
    }
}

/// Formats a duration as seconds with one decimal.
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Percentage overhead of `value` relative to `base`.
pub fn overhead_pct(base: f64, value: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (value - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_builds_every_protocol() {
        for which in Which::ALL {
            let rig = Rig::with_profile(
                which,
                AwsProfile::instant(),
                ProtocolConfig::default(),
            );
            assert_eq!(rig.protocol.name(), which.name());
            assert_eq!(rig.commit_daemon.is_some(), which == Which::P3);
            rig.drain_commits();
        }
    }

    #[test]
    fn overhead_math() {
        assert_eq!(overhead_pct(100.0, 150.0), 50.0);
        assert_eq!(overhead_pct(0.0, 10.0), 0.0);
    }
}
