//! Shared harness plumbing: protocol construction, run contexts, and
//! result formatting helpers.

use std::sync::Arc;
use std::time::Duration;

use cloudprov_cloud::{AwsProfile, CloudEnv, RunContext};
use cloudprov_core::{FlushMode, ProtocolConfig, ProvenanceClient};
use cloudprov_fs::{LocalIoParams, PaS3fs};
use cloudprov_sim::Sim;

/// Which storage configuration a run uses — the facade's [`Protocol`]
/// under the harness's historical name.
///
/// [`Protocol`]: cloudprov_core::Protocol
pub use cloudprov_core::Protocol as Which;

/// A provisioned run environment: simulation, cloud, and a
/// [`ProvenanceClient`] session (with its commit daemon for P3).
pub struct Rig {
    /// The simulation.
    pub sim: Sim,
    /// The cloud environment.
    pub env: CloudEnv,
    /// The session under test (implements `StorageProtocol`, so it is
    /// also what uploaders and file systems consume). P3's daemons are
    /// reachable through it (`client.commit_daemon()`).
    pub client: Arc<ProvenanceClient>,
}

impl Rig {
    /// Provisions a fresh environment for `which` under `context`.
    pub fn new(which: Which, context: RunContext, config: ProtocolConfig) -> Rig {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::calibrated(context));
        Self::over(sim, env, which, config, FlushMode::Blocking)
    }

    /// Provisions with an explicit profile (tests use
    /// [`AwsProfile::instant`]).
    pub fn with_profile(which: Which, profile: AwsProfile, config: ProtocolConfig) -> Rig {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, profile);
        Self::over(sim, env, which, config, FlushMode::Blocking)
    }

    /// Provisions with the non-blocking pipelined flush path (the
    /// pipelining ablation measures this against the blocking default).
    pub fn pipelined(which: Which, context: RunContext, config: ProtocolConfig) -> Rig {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::calibrated(context));
        Self::over(sim, env, which, config, FlushMode::Pipelined)
    }

    fn over(sim: Sim, env: CloudEnv, which: Which, config: ProtocolConfig, mode: FlushMode) -> Rig {
        let client = Arc::new(
            ProvenanceClient::builder(which)
                .config(config)
                .queue("wal-bench")
                .flush_mode(mode)
                .build(&env),
        );
        Rig { sim, env, client }
    }

    /// Mounts a PA-S3fs over this rig's session.
    pub fn fs(&self, io: LocalIoParams, seed: u64) -> PaS3fs {
        PaS3fs::attach(self.client.clone(), io, seed)
    }

    /// Drains the flush pipeline and P3's WAL (no-op for blocking
    /// non-P3 rigs). Call before reading final state or costs.
    pub fn drain_commits(&self) {
        self.client.drain().expect("session drain");
    }
}

/// Formats a duration as seconds with one decimal.
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// Percentage overhead of `value` relative to `base`.
pub fn overhead_pct(base: f64, value: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (value - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_core::StorageProtocol;

    #[test]
    fn rig_builds_every_protocol() {
        for which in Which::ALL {
            let rig = Rig::with_profile(which, AwsProfile::instant(), ProtocolConfig::default());
            assert_eq!(rig.client.name(), which.name());
            assert_eq!(rig.client.commit_daemon().is_some(), which == Which::P3);
            rig.drain_commits();
        }
    }

    #[test]
    fn overhead_math() {
        assert_eq!(overhead_pct(100.0, 150.0), 50.0);
        assert_eq!(overhead_pct(0.0, 10.0), 0.0);
    }
}
