//! # cloudprov-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) on
//! the simulated substrate:
//!
//! | Experiment | Module |
//! |---|---|
//! | Table 1 (properties) | [`experiments::props`] |
//! | Table 2 (service throughput) | [`experiments::services`] |
//! | Figure 3 + Table 3 (microbenchmark) | [`experiments::micro`] |
//! | Figure 4 + Table 4 (workloads, cost) | [`experiments::workload_runs`] |
//! | Table 5 (queries) | [`experiments::queries`] |
//! | §5.2 UML impact | [`experiments::umlcheck`] |
//! | Design ablations | [`experiments::ablations`] |
//!
//! The `repro` binary prints each experiment next to the paper's reported
//! numbers; the Criterion benches track scaled-down variants for
//! regressions.

#![warn(missing_docs)]

pub mod common;
pub mod experiments;
pub mod uploader;

pub use common::{overhead_pct, secs, Rig, Which};
