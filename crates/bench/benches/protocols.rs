//! Criterion benches tracking scaled-down variants of the paper's
//! experiments. Wall-clock cost is small (virtual time is free); these
//! exist to catch performance *shape* regressions:
//!
//! * `micro_upload/*` — Figure 3 (per-protocol upload of the Blast corpus)
//! * `service_upload/*` — Table 2 (raw service throughput)
//! * `queries/*` — Table 5 (Q.1/Q.3 on both layouts)
//! * `workload/*` — Figure 4 (nightly workload end-to-end)
//!
//! The measured quantity is the wall time of simulating the experiment;
//! the reported virtual-time results live in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};

use cloudprov_bench::experiments::{micro, queries, services, workload_runs};
use cloudprov_bench::Which;
use cloudprov_cloud::{Era, RunContext};
use cloudprov_workloads::BlastParams;

fn bench_micro_upload(c: &mut Criterion) {
    let corpus = micro::capture(BlastParams::small());
    let mut group = c.benchmark_group("micro_upload");
    group.sample_size(10);
    for which in Which::ALL {
        group.bench_function(which.name(), |b| {
            b.iter(|| {
                let rig = cloudprov_bench::Rig::new(
                    which,
                    micro::contexts()[0].1,
                    cloudprov_core::ProtocolConfig::default(),
                );
                cloudprov_bench::uploader::upload(&rig, &corpus, 8)
            })
        });
    }
    group.finish();
}

fn bench_service_upload(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_upload");
    group.sample_size(10);
    let ctx = RunContext::default();
    let records = cloudprov_workloads::linux_compile_provenance(256 << 10);
    group.bench_function("s3", |b| b.iter(|| services::upload_s3(&records, 150, ctx)));
    group.bench_function("simpledb", |b| {
        b.iter(|| services::upload_sdb(&records, 40, ctx))
    });
    group.bench_function("sqs", |b| {
        b.iter(|| services::upload_sqs(&records, 150, ctx))
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries");
    group.sample_size(10);
    group.bench_function("table5_small", |b| {
        b.iter(|| queries::table5(BlastParams::small()))
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.sample_size(10);
    let ctx = RunContext::ec2(Era::Sept2009);
    for which in Which::ALL {
        group.bench_function(format!("nightly_small_{}", which.name()), |b| {
            b.iter(|| workload_runs::run_cell(workload_runs::Workload::Nightly, which, ctx, false))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_micro_upload,
    bench_service_upload,
    bench_queries,
    bench_workload
);
criterion_main!(benches);
