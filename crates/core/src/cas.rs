//! The fleet-wide **content-addressed ancestor store** (CAS).
//!
//! The facade flusher's cross-batch dedupe set (`client.rs`) only ever
//! deduped within one client: every client of a fleet re-uploaded the
//! same shared ancestors, and every `flush` waited out those uploads.
//! The CAS turns ancestor upload into a fleet-wide, content-keyed,
//! *speculative background* operation:
//!
//! * An object's **CAS key** is the SHA-256 of its canonical encoding
//!   (node id, object-store key, data fingerprint/length, and the
//!   wire-encoded provenance records). Identical content hashes
//!   identically on every client of the fleet.
//! * The **registry** is a shared SimpleDB domain (`cas_{domain}`,
//!   [`cas_domain`]): one item per hash carrying the node id, the final
//!   object-store key and the record lines. The registry put is the
//!   publish commit point.
//! * **Data** (when the object carries any) lives as a raw S3 object at
//!   `cas/{sha}` in the data bucket ([`cas_object_key`]) — raw bytes,
//!   not an encoding, so the commit daemon's existing `COPY
//!   cas/{sha} → final` lands the correct data and stamps the version
//!   metadata exactly like a temp-object copy.
//! * Publishing probes the registry first (`GetAttributes`, one cheap
//!   read): a hit means some client anywhere already made this content
//!   durable, and the upload is skipped entirely. Races are harmless —
//!   a double publish re-puts identical bytes and identical
//!   (name, value) pairs, both idempotent.
//!
//! The client's flusher then logs WAL transactions that *reference*
//! hashes (`CAS\t…` lines) instead of carrying payloads, and a
//! [`FlushTicket`](crate::FlushTicket) resolves on the delta alone —
//! see the flush-path walkthrough in `client.rs`.
//!
//! **Crash ordering invariant:** a hash is only ever referenced from the
//! WAL *after* its publish is durable (`CasStore::wait` in the flusher),
//! so a client crash at any of the `client:cas:probe` /
//! `client:cas:publish` / `client:cas:register` crash points can strand
//! an unreferenced CAS object (garbage, re-publishable) but never a WAL
//! reference to content that does not exist.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use cloudprov_cloud::{Blob, CloudEnv, Metadata, PutItem};
use cloudprov_pass::{wire, PNodeId};
use cloudprov_sim::SimSemaphore;

use crate::error::{ProtocolError, Result};
use crate::protocol::{retry, FlushObject, ProtocolConfig};

/// Key prefix of CAS data objects within the data bucket. Disjoint from
/// the temp prefix, so the cleaner daemon (which lists only `tmp/`)
/// never reaps published content.
pub const CAS_OBJECT_PREFIX: &str = "cas/";

/// Records above this count make an object CAS-ineligible: the registry
/// item stores one attribute per record and SimpleDB silently truncates
/// items beyond 256 attributes — staying far under the limit keeps the
/// registry lossless. Oversized objects just take the delta path.
pub const CAS_MAX_RECORDS: usize = 200;

/// An encoded record line above this length makes an object
/// CAS-ineligible (SimpleDB rejects attribute values over 1 KB; such
/// values spill to S3 on the delta path instead).
const CAS_MAX_LINE: usize = 1000;

/// Name of the shared CAS registry domain for a provenance domain.
pub fn cas_domain(domain: &str) -> String {
    format!("cas_{domain}")
}

/// S3 key of a published CAS data object.
pub fn cas_object_key(sha: &str) -> String {
    format!("{CAS_OBJECT_PREFIX}{sha}")
}

/// A WAL-transportable reference to published CAS content: everything
/// the commit daemon needs to materialize the object without the
/// payload ever crossing the WAL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CasRef {
    /// SHA-256 (hex) of the canonical encoding — the CAS key.
    pub sha: String,
    /// Provenance node the content belongs to.
    pub id: PNodeId,
    /// Final object-store key, for objects carrying data.
    pub key: Option<String>,
    /// Whether a data object exists at [`cas_object_key`].
    pub has_data: bool,
}

/// One unit of a CAS-aware P3 log phase
/// ([`P3::flush_with_cas`](crate::P3::flush_with_cas)): either a delta
/// object carried in full, or a reference to content already published
/// to the CAS.
#[derive(Clone, Debug)]
pub enum CasFlushItem {
    /// A delta object: its payload uploads to a temp key and it travels
    /// as an `OBJ` WAL line.
    Object(FlushObject),
    /// Published CAS content: travels as a `CAS` reference line; the
    /// commit daemon materializes it from the shared store.
    Ref(CasRef),
}

/// Canonical encoding of a flush object, or `None` when the object is
/// not CAS-eligible (too many records, an over-long record line). The
/// encoding covers node id, key, data identity and every record, so two
/// objects encode identically iff persisting either produces the same
/// cloud state.
pub fn canonical_encoding(obj: &FlushObject) -> Option<String> {
    if obj.node.records.len() > CAS_MAX_RECORDS {
        return None;
    }
    let mut text = String::with_capacity(64 + obj.node.records.len() * 48);
    text.push_str("CASOBJ\t");
    text.push_str(&obj.node.id.to_string());
    text.push('\t');
    text.push_str(obj.key.as_deref().unwrap_or("-"));
    match &obj.data {
        Some(d) => {
            text.push_str(&format!(
                "\t{:016x}\t{}\n",
                d.content_fingerprint(),
                d.len()
            ));
        }
        None => text.push_str("\t-\t-\n"),
    }
    for r in &obj.node.records {
        let line = wire::encode_record(r);
        if line.len() > CAS_MAX_LINE {
            return None;
        }
        text.push_str(&line);
    }
    Some(text)
}

/// Publication state of one hash within a client.
enum CasState {
    /// A publisher is running; the semaphore releases once on completion
    /// (waiters re-release to pass the baton).
    InFlight(SimSemaphore),
    /// Probe hit or publish completed: safe to reference from the WAL.
    Durable,
    /// The publisher died or exhausted retries; referencing transactions
    /// fail and surface the error at the barrier.
    Failed(ProtocolError),
}

/// CAS traffic counters, surfaced through
/// [`PipelineStats`](crate::PipelineStats).
#[derive(Default)]
struct CasCounters {
    probes: AtomicU64,
    hits: AtomicU64,
    publishes: AtomicU64,
}

/// A publish unit produced by [`CasStore::stage`]: the content to make
/// durable under `sha`, executed by a background publisher.
pub struct CasPublish {
    sha: String,
    id: PNodeId,
    key: Option<String>,
    data: Option<Blob>,
    records: Vec<String>,
}

/// Client-side handle to the fleet-wide CAS: an in-memory hash→state map
/// (shared across clones) over the shared registry domain and data
/// prefix. Cross-*client* dedupe happens through the cloud (probe before
/// publish); the in-memory map only collapses repeat stagings within one
/// client and lets the flusher wait for in-flight publishes.
#[derive(Clone)]
pub struct CasStore {
    env: CloudEnv,
    config: ProtocolConfig,
    registry: String,
    state: Arc<Mutex<BTreeMap<String, CasState>>>,
    counters: Arc<CasCounters>,
}

impl std::fmt::Debug for CasStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CasStore")
            .field("registry", &self.registry)
            .field("entries", &self.state.lock().len())
            .finish()
    }
}

impl CasStore {
    /// Creates a handle over `config`'s layout, provisioning the shared
    /// registry domain (idempotent, unmetered administrative call).
    pub fn new(env: &CloudEnv, config: ProtocolConfig) -> CasStore {
        let registry = cas_domain(&config.layout.domain);
        env.sdb().create_domain(&registry);
        CasStore {
            env: env.clone(),
            config,
            registry,
            state: Arc::new(Mutex::new(BTreeMap::new())),
            counters: Arc::new(CasCounters::default()),
        }
    }

    /// Stages one flush object: computes its CAS key and returns the WAL
    /// reference, plus a publish unit iff this client has not seen the
    /// hash before (first stager publishes; repeats ride the same
    /// in-flight state). `None` for CAS-ineligible objects — they take
    /// the delta path.
    pub fn stage(&self, obj: &FlushObject) -> Option<(CasRef, Option<CasPublish>)> {
        let encoding = canonical_encoding(obj)?;
        let sha = sha256_hex(encoding.as_bytes());
        let cas_ref = CasRef {
            sha: sha.clone(),
            id: obj.node.id,
            key: obj.key.clone(),
            has_data: obj.data.is_some(),
        };
        let fresh = {
            let mut st = self.state.lock();
            if st.contains_key(&sha) {
                false
            } else {
                st.insert(
                    sha.clone(),
                    CasState::InFlight(SimSemaphore::new(self.env.sim(), 0)),
                );
                true
            }
        };
        let publish = fresh.then(|| CasPublish {
            sha,
            id: obj.node.id,
            key: obj.key.clone(),
            data: obj.data.clone(),
            records: obj
                .node
                .records
                .iter()
                .map(|r| wire::encode_record(r).trim_end().to_string())
                .collect(),
        });
        Some((cas_ref, publish))
    }

    /// Runs one publish unit: probe the registry, and on a miss upload
    /// the data object (if any) strictly before the registry put — the
    /// commit point. Never returns an error; the outcome lands in the
    /// hash's state and [`CasStore::wait`] reports it to the flusher.
    pub fn publish(&self, unit: CasPublish) {
        let sha = unit.sha.clone();
        // Trace: one `cas:publish` root span per publish unit. CAS
        // content is shared fleet-wide, so the span roots its own trace
        // (id = the hash's leading bits) rather than any one txn's tree.
        let tracer = self.env.tracer().clone();
        let span = tracer.enabled().then(|| {
            let trace = u128::from_str_radix(&sha[..sha.len().min(32)], 16).unwrap_or(0);
            (tracer.alloc(trace), self.env.sim().now())
        });
        let outcome = self.publish_inner(unit);
        if let Some((ctx, t0)) = span {
            tracer.emit(
                ctx,
                None,
                "cas:publish",
                &format!("cas {}", &sha[..sha.len().min(8)]),
                None,
                t0,
                self.env.sim().now(),
                0.0,
            );
        }
        let mut st = self.state.lock();
        let prev = st.insert(
            sha,
            match outcome {
                Ok(()) => CasState::Durable,
                Err(e) => CasState::Failed(e),
            },
        );
        if let Some(CasState::InFlight(sem)) = prev {
            sem.release();
        }
    }

    fn publish_inner(&self, unit: CasPublish) -> Result<()> {
        let sim = self.env.sim();
        let sdb = self.env.sdb();
        self.config.step("client:cas:probe")?;
        self.counters.probes.fetch_add(1, Ordering::Relaxed);
        let existing = retry(sim, self.config.retries, || {
            sdb.get_attributes(&self.registry, &unit.sha)
        })?;
        if !existing.is_empty() {
            // Some client anywhere already published this content. (An
            // eventually-consistent miss just republishes — idempotent.)
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if let Some(data) = &unit.data {
            // Content strictly before the registry entry that announces
            // it: a crash between the two leaves an unannounced object a
            // later publisher overwrites with identical bytes.
            self.config.step("client:cas:publish")?;
            retry(sim, self.config.retries, || {
                self.env.s3().put(
                    &self.config.layout.data_bucket,
                    &cas_object_key(&unit.sha),
                    data.clone(),
                    Metadata::new(),
                )
            })?;
        }
        self.config.step("client:cas:register")?;
        let mut attrs: Vec<(String, String)> = vec![
            ("node".to_string(), unit.id.to_string()),
            (
                "key".to_string(),
                unit.key.clone().unwrap_or_else(|| "-".to_string()),
            ),
            (
                "data".to_string(),
                if unit.data.is_some() { "1" } else { "0" }.to_string(),
            ),
        ];
        for (i, line) in unit.records.iter().enumerate() {
            attrs.push((format!("r{i:03}"), line.clone()));
        }
        retry(sim, self.config.retries, || {
            sdb.put_attributes(
                &self.registry,
                PutItem {
                    name: unit.sha.clone(),
                    attrs: attrs.clone(),
                    replace: false,
                },
            )
        })?;
        self.counters.publishes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Blocks (in virtual time) until `sha` is durable — the flusher's
    /// barrier before logging a WAL reference to it.
    ///
    /// # Errors
    ///
    /// The publisher's failure, if it died or exhausted retries.
    pub fn wait(&self, sha: &str) -> Result<()> {
        loop {
            let sem = {
                let st = self.state.lock();
                match st.get(sha) {
                    // Unknown hashes were staged by this store earlier in
                    // the same client; absence means a logic error
                    // upstream, but durability-wise the safe answer is
                    // to re-check rather than hang.
                    None => return Ok(()),
                    Some(CasState::Durable) => return Ok(()),
                    Some(CasState::Failed(e)) => return Err(e.clone()),
                    Some(CasState::InFlight(sem)) => sem.clone(),
                }
            };
            // Pass-the-baton: the publisher releases one permit; each
            // woken waiter re-releases so every waiter eventually passes.
            sem.acquire().forget();
            sem.release();
        }
    }

    /// (probes, hits, publishes) so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.counters.probes.load(Ordering::Relaxed),
            self.counters.hits.load(Ordering::Relaxed),
            self.counters.publishes.load(Ordering::Relaxed),
        )
    }
}

/// Decodes a registry item's attributes back into
/// `(id, key, has_data, records)` — the commit daemon's materialization
/// input. Returns `None` on a malformed item.
pub fn decode_registry_item(
    attrs: &[(String, String)],
) -> Option<(
    PNodeId,
    Option<String>,
    bool,
    Vec<cloudprov_pass::ProvenanceRecord>,
)> {
    let mut id = None;
    let mut key = None;
    let mut has_data = false;
    let mut lines: Vec<(&str, &str)> = Vec::new();
    for (name, value) in attrs {
        match name.as_str() {
            "node" => id = value.parse::<PNodeId>().ok(),
            "key" => key = (value != "-").then(|| value.clone()),
            "data" => has_data = value == "1",
            r if r.starts_with('r') => lines.push((name, value)),
            _ => {}
        }
    }
    // SimpleDB attributes are unordered; the zero-padded names restore
    // record order.
    lines.sort_by_key(|(name, _)| *name);
    let mut text = String::new();
    for (_, line) in &lines {
        text.push_str(line);
        text.push('\n');
    }
    let records = wire::decode(text.as_bytes()).ok()?;
    Some((id?, key, has_data, records))
}

/// SHA-256 over `bytes`, hex-encoded. Hand-rolled (FIPS 180-4) — the
/// workspace is offline and carries no hashing dependency; performance
/// is irrelevant at simulation scale.
pub fn sha256_hex(bytes: &[u8]) -> String {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = bytes.to_vec();
    let bit_len = (bytes.len() as u64) * 8;
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = String::with_capacity(64);
    for word in h {
        out.push_str(&format!("{word:08x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::AwsProfile;
    use cloudprov_pass::{Attr, FlushNode, NodeKind, ProvenanceRecord, Uuid};
    use cloudprov_sim::Sim;

    fn obj(uuid: u128, data: &str) -> FlushObject {
        let id = PNodeId::initial(Uuid(uuid));
        let blob = Blob::from(data);
        FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some("/f".into()),
                records: vec![
                    ProvenanceRecord::new(id, Attr::Type, "file"),
                    ProvenanceRecord::new(
                        id,
                        Attr::DataHash,
                        format!("{:016x}", blob.content_fingerprint()),
                    ),
                ],
                data_hash: Some(blob.content_fingerprint()),
            },
            "f",
            blob,
        )
    }

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-4 / RFC 6234 test vectors.
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Padding edge: exactly 55 and 56 bytes straddle the one-block /
        // two-block boundary.
        assert_eq!(
            sha256_hex(&[b'a'; 55]),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
        );
        assert_eq!(
            sha256_hex(&[b'a'; 56]),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    #[test]
    fn canonical_encoding_keys_by_content() {
        let a = obj(1, "same");
        let b = obj(1, "same");
        let c = obj(1, "different");
        let ea = canonical_encoding(&a).unwrap();
        assert_eq!(ea, canonical_encoding(&b).unwrap());
        assert_ne!(ea, canonical_encoding(&c).unwrap());
        // A different node with identical bytes is different content:
        // its records (and id) differ.
        assert_ne!(ea, canonical_encoding(&obj(2, "same")).unwrap());
    }

    #[test]
    fn oversized_objects_are_ineligible() {
        let mut big = obj(3, "x");
        let id = big.node.id;
        big.node.records = (0..=CAS_MAX_RECORDS)
            .map(|i| ProvenanceRecord::new(id, Attr::Env, format!("v{i}")))
            .collect();
        assert!(canonical_encoding(&big).is_none(), "too many records");
        let mut long = obj(4, "x");
        long.node.records = vec![ProvenanceRecord::new(id, Attr::Env, "V".repeat(2000))];
        assert!(canonical_encoding(&long).is_none(), "over-long line");
    }

    #[test]
    fn publish_probe_hit_skips_the_upload() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let store_a = CasStore::new(&env, ProtocolConfig::default());
        let store_b = CasStore::new(&env, ProtocolConfig::default());
        let o = obj(5, "payload");
        let (r, publish) = store_a.stage(&o).unwrap();
        store_a.publish(publish.unwrap());
        store_a.wait(&r.sha).unwrap();
        assert_eq!(store_a.counters(), (1, 0, 1));
        // A second client staging identical content probes, hits, and
        // uploads nothing.
        let (r2, publish2) = store_b.stage(&o).unwrap();
        assert_eq!(r2.sha, r.sha);
        store_b.publish(publish2.unwrap());
        store_b.wait(&r2.sha).unwrap();
        assert_eq!(store_b.counters(), (1, 1, 0));
        // Registry round-trips the content.
        let attrs = env
            .sdb()
            .peek_item(&cas_domain("provenance"), &r.sha)
            .unwrap();
        let (id, key, has_data, records) = decode_registry_item(&attrs).unwrap();
        assert_eq!(id, o.node.id);
        assert_eq!(key.as_deref(), Some("f"));
        assert!(has_data);
        assert_eq!(records, o.node.records);
        assert!(env
            .s3()
            .peek_committed("data", &cas_object_key(&r.sha))
            .is_some());
    }

    #[test]
    fn repeat_staging_publishes_once() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let store = CasStore::new(&env, ProtocolConfig::default());
        let o = obj(6, "x");
        let (_, first) = store.stage(&o).unwrap();
        assert!(first.is_some());
        let (_, second) = store.stage(&o).unwrap();
        assert!(second.is_none(), "second staging rides the first publish");
    }

    #[test]
    fn a_crashed_publisher_fails_waiters_not_hangs_them() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let config = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| step != "client:cas:register")),
            ..ProtocolConfig::default()
        };
        let store = CasStore::new(&env, config);
        let o = obj(7, "x");
        let (r, publish) = store.stage(&o).unwrap();
        store.publish(publish.unwrap());
        assert!(matches!(
            store.wait(&r.sha),
            Err(ProtocolError::Crashed { .. })
        ));
        // Content PUT landed (strictly before the register crash) but
        // the registry has no entry: the hash was never announced, so
        // nothing can reference it — the dangling side is garbage, not
        // a broken reference.
        assert!(env
            .sdb()
            .peek_item(&cas_domain("provenance"), &r.sha)
            .is_none());
    }
}
