//! The [`ProvenanceClient`] session facade: one front door to the four
//! storage configurations.
//!
//! Every consumer of this workspace — workloads, benches, examples,
//! integration tests — used to hand-construct a concrete protocol
//! (`P1::new`, `P2::new`, …), wire P3's commit daemon separately, and
//! block on every synchronous `flush`. The facade replaces all of that
//! with a session object built by a typed [`ClientBuilder`]:
//!
//! * **Protocol selection** via [`Protocol`] instead of four constructors.
//! * **A non-blocking pipelined flush path**: [`ProvenanceClient::flush_async`]
//!   enqueues the batch and returns a [`FlushTicket`] immediately; a
//!   background flusher thread on the [`Sim`] coalesces queued batches,
//!   drops ancestors already persisted in an earlier batch, and uploads
//!   each merged batch through the protocol's parallel upload path (up
//!   to `upload_concurrency` connections). [`ProvenanceClient::sync`]
//!   and [`ProvenanceClient::drain`] are the barriers the crash
//!   experiments need.
//! * **Daemon wiring**: a P3 client owns its commit daemon; `drain`
//!   runs it to quiescence.
//! * **One error type** ([`ClientError`](crate::ClientError)) at the
//!   facade boundary.
//!
//! The client itself implements [`StorageProtocol`], so it drops into
//! every existing consumer (`PaS3fs`, the trace driver, the query
//! engine) unchanged: in pipelined mode `flush` becomes an enqueue.
//!
//! # Examples
//!
//! ```
//! use cloudprov_cloud::{AwsProfile, CloudEnv};
//! use cloudprov_core::{FlushBatch, Protocol, ProvenanceClient, StorageProtocol};
//! use cloudprov_sim::Sim;
//!
//! let sim = Sim::new();
//! let env = CloudEnv::new(&sim, AwsProfile::instant());
//! let client = ProvenanceClient::builder(Protocol::P2)
//!     .upload_concurrency(8)
//!     .build(&env);
//! client.flush(FlushBatch::default())?;
//! client.drain()?;
//! # Ok::<(), cloudprov_core::ClientError>(())
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use cloudprov_cloud::CloudEnv;
use cloudprov_pass::PNodeId;
use cloudprov_sim::{Sim, SimSemaphore, SimTime};

use crate::cas::{CasFlushItem, CasRef, CasStore};
use crate::error::{ClientError, ClientResult, ProtocolError, Result};
use crate::layout::Layout;
use crate::p3::{CleanerDaemon, CommitDaemon, P3};
use crate::protocol::{
    FlushBatch, ProtocolConfig, ProvenanceStore, ReadResult, S3fsBaseline, StepHook,
    StorageProtocol,
};
use crate::{P1, P2};

/// The four storage configurations of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Protocol {
    /// The provenance-free S3fs baseline.
    S3fs,
    /// P1: data and provenance both as S3 objects.
    P1,
    /// P2: data in S3, provenance in SimpleDB.
    P2,
    /// P3: S3 + SimpleDB + SQS write-ahead log.
    P3,
}

impl Protocol {
    /// All four configurations, baseline first (the order of every table
    /// in the paper).
    pub const ALL: [Protocol; 4] = [Protocol::S3fs, Protocol::P1, Protocol::P2, Protocol::P3];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::S3fs => "S3fs",
            Protocol::P1 => "P1",
            Protocol::P2 => "P2",
            Protocol::P3 => "P3",
        }
    }

    /// Whether this configuration records provenance at all.
    pub fn records_provenance(self) -> bool {
        self != Protocol::S3fs
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Protocol {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Protocol, String> {
        match s {
            "S3fs" | "s3fs" => Ok(Protocol::S3fs),
            "P1" | "p1" => Ok(Protocol::P1),
            "P2" | "p2" => Ok(Protocol::P2),
            "P3" | "p3" => Ok(Protocol::P3),
            other => Err(format!("unknown protocol '{other}'")),
        }
    }
}

/// How [`StorageProtocol::flush`] behaves on the client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlushMode {
    /// `flush` blocks until the batch is durable (the paper's client).
    #[default]
    Blocking,
    /// `flush` enqueues to the background flusher and returns
    /// immediately; [`ProvenanceClient::sync`]/[`ProvenanceClient::drain`]
    /// are the durability barriers.
    Pipelined,
}

/// Admission gate for client-side backpressure: `flush` / `flush_async`
/// block (in virtual time) while the gate returns `false`. The fleet
/// wires this to a bounded per-shard WAL depth, so clients sharing an
/// overloaded shard throttle instead of growing the queue without bound.
pub type AdmissionGate = Arc<dyn Fn() -> bool + Send + Sync>;

/// Typed builder for [`ProvenanceClient`] — the only supported way to
/// construct a storage protocol outside `cloudprov-core`.
#[derive(Clone)]
pub struct ClientBuilder {
    protocol: Protocol,
    config: ProtocolConfig,
    queue: String,
    identity: Option<String>,
    mode: FlushMode,
    throttle: Option<(AdmissionGate, Duration)>,
    bell: Option<SimSemaphore>,
}

impl fmt::Debug for ClientBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientBuilder")
            .field("protocol", &self.protocol)
            .field("config", &self.config)
            .field("queue", &self.queue)
            .field("identity", &self.identity)
            .field("mode", &self.mode)
            .field("throttle", &self.throttle.as_ref().map(|(_, p)| p))
            .field("bell", &self.bell.is_some())
            .finish()
    }
}

impl ClientBuilder {
    /// Starts a builder for `protocol` with the paper's default tuning.
    pub fn new(protocol: Protocol) -> ClientBuilder {
        ClientBuilder {
            protocol,
            config: ProtocolConfig::default(),
            queue: "wal".to_string(),
            identity: None,
            mode: FlushMode::Blocking,
            throttle: None,
            bell: None,
        }
    }

    /// Cloud naming layout (buckets, prefixes, SimpleDB domain).
    pub fn layout(mut self, layout: Layout) -> Self {
        self.config.layout = layout;
        self
    }

    /// Client-side parallel connections for uploads.
    pub fn upload_concurrency(mut self, n: usize) -> Self {
        self.config.upload_concurrency = n.max(1);
        self
    }

    /// Persist ancestors strictly before descendants (the protocol as
    /// *specified*; the paper's evaluated implementation uploads in
    /// parallel).
    pub fn strict_causal_order(mut self, strict: bool) -> Self {
        self.config.strict_causal_order = strict;
        self
    }

    /// Retries per cloud call before giving up.
    pub fn retries(mut self, n: usize) -> Self {
        self.config.retries = n;
        self
    }

    /// Crash-injection hook checked at protocol step boundaries.
    pub fn step_hook(mut self, hook: StepHook) -> Self {
        self.config.step_hook = Some(hook);
        self
    }

    /// P3 WAL message payload budget in bytes (≤ the 8 KB SQS limit).
    pub fn wal_message_limit(mut self, bytes: usize) -> Self {
        self.config.wal_message_limit = bytes;
        self
    }

    /// Items per SimpleDB batch write (≤ the 25-item service limit).
    pub fn db_batch(mut self, items: usize) -> Self {
        self.config.db_batch = items;
        self
    }

    /// Parallel connections for SimpleDB batch calls.
    pub fn db_concurrency(mut self, n: usize) -> Self {
        self.config.db_concurrency = n.max(1);
        self
    }

    /// Whether P3's log phase packs WAL messages into SendMessageBatch
    /// calls (on by default; off reproduces the paper's one-send-per-
    /// message 2009 client).
    pub fn wal_batch_send(mut self, on: bool) -> Self {
        self.config.wal_batch_send = on;
        self
    }

    /// Parallel connections P3's commit daemon opens inside one group
    /// commit (S3 copy/GC fan-out, batched WAL acks). Daemon-side only.
    pub fn commit_parallelism(mut self, n: usize) -> Self {
        self.config.commit_parallelism = n.max(1);
        self
    }

    /// Whether P3's commit daemon maintains the commit-time ancestry
    /// index (on by default). Turning it off removes the indexed query
    /// plan — the planner falls back to SELECTs — and saves the daemon's
    /// index writes; deployments that never run lineage queries may
    /// prefer that trade.
    pub fn ancestry_index(mut self, on: bool) -> Self {
        self.config.index = on;
        self
    }

    /// Name of the client's P3 WAL queue (each client has its own,
    /// §4.3.3). Ignored by the other protocols.
    pub fn queue(mut self, name: impl Into<String>) -> Self {
        self.queue = name.into();
        self
    }

    /// Client identity seeding P3's transaction-id stream. Defaults to
    /// the queue name (the paper's one-client-per-queue layout); a fleet
    /// routing many clients onto one *shard* queue must give each client
    /// a distinct identity so transaction ids cannot collide.
    pub fn wal_identity(mut self, identity: impl Into<String>) -> Self {
        self.identity = Some(identity.into());
        self
    }

    /// Installs client-side backpressure: `flush`/`flush_async` re-check
    /// `gate` every `poll` of virtual time and proceed only once it
    /// admits. The gate is polled on the *submitting* thread, before the
    /// batch enters the pipeline.
    pub fn throttle(mut self, gate: AdmissionGate, poll: Duration) -> Self {
        self.throttle = Some((gate, poll.max(Duration::from_millis(1))));
        self
    }

    /// Installs an admission doorbell: a throttled client parks on this
    /// semaphore (instead of sleeping a full poll interval) and re-checks
    /// the gate whenever it rings — the fleet rings it when the commit
    /// daemon acknowledges WAL messages on the client's shard. A lost
    /// wakeup degrades to the `throttle` poll fallback, never a stuck
    /// client. No effect without a throttle gate.
    pub fn admission_bell(mut self, bell: SimSemaphore) -> Self {
        self.bell = Some(bell);
        self
    }

    /// Whether the pipelined P3 flush path routes eligible objects
    /// through the fleet-wide content-addressed ancestor store (on by
    /// default; inert for other protocols and blocking clients).
    pub fn cas(mut self, on: bool) -> Self {
        self.config.cas = on;
        self
    }

    /// Capacity of the pipelined flusher's cross-batch dedupe set.
    pub fn dedupe_cap(mut self, cap: usize) -> Self {
        self.config.dedupe_cap = cap;
        self
    }

    /// Selects the non-blocking pipelined flush path.
    pub fn pipelined(mut self) -> Self {
        self.mode = FlushMode::Pipelined;
        self
    }

    /// Sets the flush mode explicitly.
    pub fn flush_mode(mut self, mode: FlushMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the whole tuning config (escape hatch for harnesses that
    /// sweep configs; prefer the typed setters).
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the client over a cloud environment.
    pub fn build(self, env: &CloudEnv) -> ProvenanceClient {
        let ClientBuilder {
            protocol,
            config,
            queue,
            identity,
            mode,
            throttle,
            bell,
        } = self;
        let mut wal_url = None;
        let mut daemon = None;
        let mut p3_handle = None;
        let inner: Arc<dyn StorageProtocol> = match protocol {
            Protocol::S3fs => Arc::new(S3fsBaseline::new(env, config.clone())),
            Protocol::P1 => Arc::new(P1::new(env, config.clone())),
            Protocol::P2 => Arc::new(P2::new(env, config.clone())),
            Protocol::P3 => {
                let identity = identity.as_deref().unwrap_or(&queue);
                let p3 = P3::with_identity(env, config.clone(), &queue, identity);
                wal_url = Some(p3.wal_url().to_string());
                daemon = Some(Arc::new(p3.commit_daemon()));
                p3_handle = Some(p3.clone());
                Arc::new(p3)
            }
        };
        let pipeline = match mode {
            FlushMode::Blocking => None,
            FlushMode::Pipelined => Some(Pipeline::start(
                env,
                inner.clone(),
                p3_handle.clone(),
                config.clone(),
            )),
        };
        ProvenanceClient {
            env: env.clone(),
            protocol,
            config,
            inner,
            daemon,
            p3: p3_handle,
            wal_url,
            mode,
            pipeline,
            throttle,
            bell,
        }
    }
}

/// A provenance storage session: protocol, daemons and flush pipeline
/// behind one handle. Construct with [`ProvenanceClient::builder`].
pub struct ProvenanceClient {
    env: CloudEnv,
    protocol: Protocol,
    config: ProtocolConfig,
    inner: Arc<dyn StorageProtocol>,
    daemon: Option<Arc<CommitDaemon>>,
    /// Concrete P3 handle (shares state with `inner`), for P3-only
    /// instrumentation like the logged-transaction timestamps.
    p3: Option<P3>,
    wal_url: Option<String>,
    mode: FlushMode,
    pipeline: Option<Pipeline>,
    throttle: Option<(AdmissionGate, Duration)>,
    bell: Option<SimSemaphore>,
}

impl fmt::Debug for ProvenanceClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProvenanceClient")
            .field("protocol", &self.protocol)
            .field("mode", &self.mode)
            .field("config", &self.config)
            .finish()
    }
}

impl ProvenanceClient {
    /// Starts a typed builder for `protocol`.
    pub fn builder(protocol: Protocol) -> ClientBuilder {
        ClientBuilder::new(protocol)
    }

    /// Which storage configuration this session uses.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// How `flush` behaves on this session.
    pub fn flush_mode(&self) -> FlushMode {
        self.mode
    }

    /// The cloud environment the session runs against.
    pub fn env(&self) -> &CloudEnv {
        &self.env
    }

    /// The tuning config in force.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Bucket where primary data objects live.
    pub fn data_bucket(&self) -> &str {
        &self.config.layout.data_bucket
    }

    /// The underlying protocol as a trait object (for consumers that
    /// take `Arc<dyn StorageProtocol>` and want to bypass the pipeline,
    /// e.g. crash harnesses measuring the raw blocking path).
    pub fn storage(&self) -> &Arc<dyn StorageProtocol> {
        &self.inner
    }

    /// P3's commit daemon (None for other protocols). Drive it manually
    /// with [`CommitDaemon::poll_once`]/[`CommitDaemon::run_until_idle`]
    /// or spawn it in the background; [`ProvenanceClient::drain`] runs
    /// it to quiescence either way.
    pub fn commit_daemon(&self) -> Option<&Arc<CommitDaemon>> {
        self.daemon.as_ref()
    }

    /// Builds a P3 cleaner daemon reaping orphaned temp objects (None
    /// for other protocols).
    pub fn cleaner_daemon(&self) -> Option<CleanerDaemon> {
        (self.protocol == Protocol::P3).then(|| CleanerDaemon::new(&self.env, self.config.clone()))
    }

    /// URL of this session's P3 WAL queue (None for other protocols) —
    /// what a recovery machine needs to commit on this client's behalf.
    pub fn wal_url(&self) -> Option<&str> {
        self.wal_url.as_deref()
    }

    /// (transaction id, WAL-durable instant) for every transaction this
    /// session has logged (empty for non-P3 sessions). The fleet
    /// benchmark joins these with the daemon pool's commit timestamps
    /// into the per-transaction commit-latency distribution.
    pub fn wal_logged_transactions(&self) -> Vec<(cloudprov_pass::Uuid, SimTime)> {
        self.p3
            .as_ref()
            .map(|p| p.logged_transactions())
            .unwrap_or_default()
    }

    /// Blocks (in virtual time) until the admission gate, if any, admits
    /// a new batch — the fleet's per-shard backpressure point. With a
    /// doorbell installed the wait parks on it (waking as soon as the
    /// daemon drains the shard) and the poll interval is only the lost-
    /// wakeup fallback. Returns how long admission blocked.
    fn admit(&self) -> Duration {
        let Some((gate, poll)) = &self.throttle else {
            return Duration::ZERO;
        };
        let start = self.env.sim().now();
        while !gate() {
            match &self.bell {
                Some(bell) => {
                    if let Some(permit) = bell.acquire_timeout(*poll) {
                        permit.forget();
                    }
                }
                None => self.env.sim().sleep(*poll),
            }
        }
        self.env.sim().now().saturating_duration_since(start)
    }

    /// Enqueues a batch on the background flusher and returns a ticket
    /// that resolves when the batch's **delta** is durable: objects the
    /// content-addressed store covers ride speculative background
    /// publishes the ticket does not wait for (an all-eligible batch
    /// resolves at submit), and [`ProvenanceClient::sync`] is the full
    /// durability barrier. On a blocking-mode client this degenerates to
    /// an inline flush returning a resolved ticket, so call sites can be
    /// mode-agnostic.
    ///
    /// With a [`ClientBuilder::throttle`] gate installed, the call
    /// blocks until the gate admits — after CAS staging, so ancestor
    /// publishes overlap the throttle wait.
    pub fn flush_async(&self, batch: FlushBatch) -> FlushTicket {
        match &self.pipeline {
            Some(p) => {
                let refs = p.stage(&batch);
                let admission = self.admit();
                p.submit(batch, refs, admission)
            }
            None => {
                self.admit();
                FlushTicket::resolved(&self.env, self.inner.flush(batch))
            }
        }
    }

    /// Flush→resolve latencies observed so far (capped; empty on a
    /// blocking-mode client): for each submitted batch, the virtual time
    /// from `flush`/`flush_async` enqueue to the moment its ticket
    /// resolved — immediately for batches the content-addressed store
    /// fully covered, at merged-upload durability for batches carrying a
    /// delta. The fleet benchmark's p50/p99 columns aggregate these
    /// across clients.
    pub fn flush_latencies(&self) -> Vec<Duration> {
        self.pipeline
            .as_ref()
            .map(|p| p.shared.lock().samples.iter().map(|s| s.total).collect())
            .unwrap_or_default()
    }

    /// The per-flush latency split behind [`flush_latencies`]
    /// (same order, same cap): admission wait, flusher-queue dwell and
    /// upload time per sample, so the tail's composition is measurable
    /// rather than guessed.
    ///
    /// [`flush_latencies`]: ProvenanceClient::flush_latencies
    pub fn flush_breakdown(&self) -> Vec<FlushSample> {
        self.pipeline
            .as_ref()
            .map(|p| p.shared.lock().samples.clone())
            .unwrap_or_default()
    }

    /// Barrier: blocks (in virtual time) until every batch enqueued so
    /// far is durable, then reports the first pipeline error since the
    /// last barrier, if any.
    ///
    /// # Errors
    ///
    /// The first [`ClientError`] produced by a background flush since
    /// the previous barrier.
    pub fn sync(&self) -> ClientResult<()> {
        match &self.pipeline {
            Some(p) => p.sync(),
            None => Ok(()),
        }
    }

    /// Full quiescence barrier: [`ProvenanceClient::sync`], then (for
    /// P3) runs the commit daemon until the WAL is empty. After `drain`
    /// the cloud state is what the blocking path would have produced.
    ///
    /// # Errors
    ///
    /// Pipeline errors first, then commit-daemon errors.
    pub fn drain(&self) -> ClientResult<()> {
        self.sync()?;
        if let Some(d) = &self.daemon {
            d.run_until_idle().map_err(ClientError::from)?;
        }
        Ok(())
    }

    /// Pipeline counters (None on a blocking-mode client).
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.pipeline.as_ref().map(Pipeline::stats)
    }
}

impl StorageProtocol for ProvenanceClient {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Blocking mode: delegates to the protocol and returns when the
    /// batch is durable. Pipelined mode: enqueues and returns
    /// immediately — errors surface at the next barrier or ticket wait.
    /// Either way an installed admission gate is waited out first.
    fn flush(&self, batch: FlushBatch) -> Result<()> {
        match &self.pipeline {
            Some(p) => {
                let refs = p.stage(&batch);
                let admission = self.admit();
                p.submit(batch, refs, admission);
                Ok(())
            }
            None => {
                self.admit();
                self.inner.flush(batch)
            }
        }
    }

    fn read(&self, key: &str) -> Result<ReadResult> {
        self.inner.read(key)
    }

    fn delete(&self, key: &str) -> Result<()> {
        if let Some(p) = &self.pipeline {
            // A mutation is a synchronization point: wait out queued
            // flushes first, or a pending upload of this key would land
            // *after* the delete and resurrect the object (the blocking
            // path deletes strictly after prior flushes completed).
            p.sync_raw()?;
            // And forget anything persisted under this key: re-flushing
            // identical content after a delete has to reach the cloud
            // again.
            p.invalidate_key(key);
        }
        self.inner.delete(key)
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        self.inner.stat(key)
    }

    fn provenance_store(&self) -> Option<ProvenanceStore> {
        self.inner.provenance_store()
    }
}

impl Drop for ProvenanceClient {
    fn drop(&mut self) {
        if let Some(p) = &self.pipeline {
            p.shutdown();
        }
    }
}

/// Counters exposed by [`ProvenanceClient::pipeline_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Batches enqueued via `flush_async`/`flush`.
    pub submitted: u64,
    /// Batches durably persisted (or failed).
    pub completed: u64,
    /// Uploads the flusher issued (merged batches), ≤ `completed`.
    pub uploads: u64,
    /// Objects dropped because an earlier batch already persisted them.
    pub deduped_objects: u64,
    /// Dedupe-set entries evicted oldest-first once past
    /// `ProtocolConfig::dedupe_cap` — a nonzero count means later
    /// identical flushes may re-upload (idempotently), never that
    /// correctness was at risk.
    pub dedupe_evictions: u64,
    /// Content-addressed-store registry probes this client issued.
    pub cas_probes: u64,
    /// Probes that found the ancestor already published fleet-wide (the
    /// cross-client dedupe the CAS exists for).
    pub cas_hits: u64,
    /// Ancestors this client published into the CAS.
    pub cas_publishes: u64,
}

/// One flush's latency split, reported by
/// [`ProvenanceClient::flush_breakdown`]. `total` is what
/// [`ProvenanceClient::flush_latencies`] aggregates; `admission` is the
/// backpressure wait *before* enqueue and is deliberately not part of
/// `total` (the fleet reports it as its own column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushSample {
    /// Enqueue → ticket resolve. Zero for a batch the content-addressed
    /// store fully covered (its ticket resolves at submit).
    pub total: Duration,
    /// Admission-gate wait before enqueue.
    pub admission: Duration,
    /// Enqueue → flusher pickup (queue dwell; zero for CAS-settled
    /// batches).
    pub queued: Duration,
    /// Flusher pickup → merged upload durable (zero for CAS-settled
    /// batches).
    pub upload: Duration,
}

/// Handle to one asynchronous flush; resolves when the batch is durable.
#[derive(Debug)]
pub struct FlushTicket {
    state: Arc<TicketState>,
}

impl FlushTicket {
    fn resolved(env: &CloudEnv, result: Result<()>) -> FlushTicket {
        FlushTicket {
            state: Arc::new(TicketState {
                sim: env.sim().clone(),
                sem: Mutex::new(None),
                result: Mutex::new(Some(result)),
            }),
        }
    }

    /// True once the batch is durable (or failed).
    pub fn is_done(&self) -> bool {
        self.state.result.lock().is_some()
    }

    /// Blocks (in virtual time) until the batch is durable.
    ///
    /// # Errors
    ///
    /// The error of the merged upload this batch rode in, if it failed.
    pub fn wait(&self) -> ClientResult<()> {
        if let Some(done) = self.state.result.lock().clone() {
            return done.map_err(ClientError::from);
        }
        // Unresolved: park on the ticket's (lazily created — most
        // tickets are never waited on) semaphore. The permit is
        // returned on drop, so repeated and concurrent waits all pass
        // once the ticket resolves.
        let sem = self
            .state
            .sem
            .lock()
            .get_or_insert_with(|| SimSemaphore::new(&self.state.sim, 0))
            .clone();
        let _permit = sem.acquire();
        self.state
            .result
            .lock()
            .clone()
            .expect("ticket resolved without a result")
            .map_err(ClientError::from)
    }
}

#[derive(Debug)]
struct TicketState {
    sim: Sim,
    /// Created on the first `wait`; absent for fire-and-forget tickets.
    sem: Mutex<Option<SimSemaphore>>,
    result: Mutex<Option<Result<()>>>,
}

impl TicketState {
    /// First resolution wins: a ticket settled at submit (fully
    /// CAS-routed batch) keeps its `Ok` when the flusher later resolves
    /// the whole merge — flusher errors for such batches surface at the
    /// `sync`/`drain` barrier instead.
    fn resolve(&self, result: Result<()>) {
        {
            let mut slot = self.result.lock();
            if slot.is_some() {
                return;
            }
            *slot = Some(result);
        }
        if let Some(sem) = self.sem.lock().as_ref() {
            sem.release();
        }
    }
}

struct Job {
    batch: FlushBatch,
    /// Per-object CAS routing decided at submit, aligned with
    /// `batch.objects`: `Some` rides the content-addressed store, `None`
    /// takes the legacy inline-upload path.
    refs: Vec<Option<CasRef>>,
    ticket: Arc<TicketState>,
    /// Virtual instant the batch was enqueued, for flush→resolve latency.
    submitted_at: SimTime,
    /// How long the admission gate blocked before enqueue.
    admission: Duration,
    /// Fully CAS-routed: the ticket resolved (and the latency sample was
    /// recorded) at submit; the flusher must not resolve or sample it
    /// again.
    early: bool,
}

/// Content digest of one flush object: node id, pending records, data.
/// Two objects with equal digests persist identical state, so the
/// second is safe to drop; a node re-flushed with *new* pending records
/// digests differently and is kept.
fn object_digest(obj: &crate::FlushObject) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for r in &obj.node.records {
        eat(cloudprov_pass::wire::encode_record(r).as_bytes());
    }
    if let Some(key) = &obj.key {
        eat(key.as_bytes());
    }
    if let Some(data) = &obj.data {
        eat(&data.content_fingerprint().to_le_bytes());
        eat(&data.len().to_le_bytes());
    }
    h
}

/// Cap on the barrier error buffer: a client driven purely through
/// `FlushTicket::wait` (never `sync`/`drain`) must not accumulate one
/// error per failed merge forever.
const ERROR_CAP: usize = 256;

/// Cap on the per-client flush→durable latency samples kept for the
/// fleet benchmark's percentile columns.
const LATENCY_CAP: usize = 1 << 16;

#[derive(Default)]
struct PipelineState {
    queue: VecDeque<Job>,
    shutdown: bool,
    /// Digest (and object-store key) of the last state durably
    /// persisted per node version — the cross-batch ancestor dedupe
    /// set. A node whose pending records changed since digests
    /// differently and is re-uploaded. Bounded to
    /// `ProtocolConfig::dedupe_cap` entries via `persisted_order`.
    persisted: BTreeMap<PNodeId, (u64, Option<String>)>,
    /// Insertion order of `persisted` keys, for oldest-first eviction.
    persisted_order: VecDeque<PNodeId>,
    /// Object-store key → node versions persisted under it, so
    /// `delete(key)` can invalidate their dedupe entries (a deleted
    /// object re-flushed with identical content must re-upload).
    key_index: BTreeMap<String, Vec<PNodeId>>,
    submitted: u64,
    completed: u64,
    uploads: u64,
    deduped: u64,
    /// Failures of merged uploads, tagged with the job-counter range
    /// the merge covered (jobs `start+1 ..= end`). A barrier with
    /// target `T` *reports* an error iff `start < T` and *retires* it
    /// iff `end <= T`, so every overlapping barrier observes the
    /// failure (merges can span work from several threads). Bounded to
    /// [`ERROR_CAP`] entries (tickets carry per-batch errors anyway;
    /// this buffer only feeds barriers).
    errors: VecDeque<(u64, u64, ProtocolError)>,
    /// Barrier waiters: woken when `completed` reaches their target.
    waiters: Vec<(u64, SimSemaphore)>,
    /// Per-flush latency samples (see [`FlushSample`]), capped at
    /// [`LATENCY_CAP`].
    samples: Vec<FlushSample>,
    /// Dedupe-set entries evicted past the cap (surfaced in
    /// [`PipelineStats::dedupe_evictions`]).
    evictions: u64,
}

impl PipelineState {
    /// Records the digests of a durably persisted merge, evicting the
    /// oldest entries beyond `cap` (`ProtocolConfig::dedupe_cap`).
    fn record_persisted(
        &mut self,
        merged_ids: BTreeMap<PNodeId, (u64, Option<String>)>,
        cap: usize,
    ) {
        for (id, (digest, key)) in merged_ids {
            if let Some(k) = &key {
                self.key_index.entry(k.clone()).or_default().push(id);
            }
            if self.persisted.insert(id, (digest, key)).is_none() {
                self.persisted_order.push_back(id);
            }
        }
        while self.persisted.len() > cap {
            // Skip order entries already invalidated by `delete`.
            let Some(oldest) = self.persisted_order.pop_front() else {
                break;
            };
            if let Some((_, key)) = self.persisted.remove(&oldest) {
                self.evictions += 1;
                self.unindex(oldest, key.as_deref());
            }
        }
    }

    /// Forgets every dedupe entry persisted under `key`: after a
    /// delete, an identical re-flush must reach the cloud again.
    fn invalidate_key(&mut self, key: &str) {
        let Some(ids) = self.key_index.remove(key) else {
            return;
        };
        for id in ids {
            self.persisted.remove(&id);
            // The stale `persisted_order` entry is skipped at eviction.
        }
    }

    fn unindex(&mut self, id: PNodeId, key: Option<&str>) {
        if let Some(k) = key {
            if let Some(ids) = self.key_index.get_mut(k) {
                ids.retain(|i| *i != id);
                if ids.is_empty() {
                    self.key_index.remove(k);
                }
            }
        }
    }
}

/// The background flusher: one simulated thread draining a batch queue
/// through the protocol's (already parallel, `upload_concurrency`-wide)
/// upload path. Batches that queue up while an upload is in flight are
/// coalesced into one merged batch, preserving enqueue order (ancestors
/// stay ahead of their descendants because `flush_closure` emits them
/// first and earlier closes enqueue first).
///
/// On a P3 client with the content-addressed store enabled, `stage`
/// fingerprints each object at submit and kicks off speculative
/// background publishes; the flusher then ships CAS *references* for
/// covered objects (waiting out their publishes first, so the WAL never
/// names a hash that is not durable) and inline uploads only for the
/// rest.
struct Pipeline {
    sim: Sim,
    shared: Arc<Mutex<PipelineState>>,
    /// Producer/consumer signal: one release per submitted job plus one
    /// per shutdown request.
    work: SimSemaphore,
    /// The fleet-wide content-addressed ancestor store (P3 with
    /// `ProtocolConfig::cas` only).
    cas: Option<CasStore>,
    config: ProtocolConfig,
}

impl Pipeline {
    fn start(
        env: &CloudEnv,
        inner: Arc<dyn StorageProtocol>,
        p3: Option<P3>,
        config: ProtocolConfig,
    ) -> Pipeline {
        let sim = env.sim().clone();
        // CAS routing needs the WAL's CAS-line vocabulary, so it is
        // P3-only; other protocols (and `cas: false`) keep the legacy
        // inline-upload path with refs all `None`.
        let p3cas = if config.cas { p3 } else { None };
        let cas = p3cas.as_ref().map(|_| CasStore::new(env, config.clone()));
        let shared = Arc::new(Mutex::new(PipelineState::default()));
        let work = SimSemaphore::new(&sim, 0);
        {
            let shared = shared.clone();
            let work = work.clone();
            let cas = cas.clone();
            let config = config.clone();
            // The handle is deliberately dropped: the flusher exits on
            // shutdown (or idles, parked on `work`, costing no virtual
            // time) and is never joined.
            let sim2 = sim.clone();
            let _flusher =
                sim.spawn(move || Self::run(sim2, shared, work, inner, p3cas, cas, config));
        }
        Pipeline {
            sim,
            shared,
            work,
            cas,
            config,
        }
    }

    fn run(
        sim: Sim,
        shared: Arc<Mutex<PipelineState>>,
        work: SimSemaphore,
        inner: Arc<dyn StorageProtocol>,
        p3cas: Option<P3>,
        cas: Option<CasStore>,
        config: ProtocolConfig,
    ) {
        loop {
            // One signal per job; extra wakeups (for jobs a previous
            // iteration already coalesced) find the queue empty.
            work.acquire().forget();
            let (jobs, entries, wait_shas, merged_ids) = {
                let mut st = shared.lock();
                if st.queue.is_empty() {
                    if st.shutdown {
                        break;
                    }
                    continue;
                }
                let mut pending: VecDeque<Job> = st.queue.drain(..).collect();
                let mut jobs: Vec<Job> = Vec::new();
                let mut seen: BTreeMap<PNodeId, (u64, Option<String>)> = BTreeMap::new();
                let mut merged_keys: BTreeMap<String, PNodeId> = BTreeMap::new();
                let mut entries: Vec<CasFlushItem> = Vec::new();
                let mut wait_shas: Vec<String> = Vec::new();
                while let Some(job) = pending.pop_front() {
                    // Never merge two *versions* of one key: the merged
                    // batch uploads in parallel, so the older version's
                    // put could land last. A conflicting job starts the
                    // next merge instead (the blocking path serializes
                    // exactly the same way).
                    let conflicts = job.batch.objects.iter().any(|o| {
                        o.key
                            .as_ref()
                            .is_some_and(|k| merged_keys.get(k).is_some_and(|id| *id != o.node.id))
                    });
                    if conflicts {
                        pending.push_front(job);
                        break;
                    }
                    for (obj, cref) in job.batch.objects.iter().zip(&job.refs) {
                        if let Some(k) = &obj.key {
                            merged_keys.insert(k.clone(), obj.node.id);
                        }
                        // Drop objects whose exact state an earlier
                        // batch (or an earlier object in this merge)
                        // already persisted; first occurrence keeps the
                        // ancestors-first position.
                        let digest = object_digest(obj);
                        let dup = st.persisted.get(&obj.node.id).map(|(d, _)| d) == Some(&digest)
                            || seen.get(&obj.node.id).map(|(d, _)| d) == Some(&digest);
                        if dup {
                            st.deduped += 1;
                            continue;
                        }
                        seen.insert(obj.node.id, (digest, obj.key.clone()));
                        // CAS-covered objects ship as references (their
                        // content rides the speculative publish); the
                        // rest ship inline, in the same interleaved
                        // order so last-for-key election at the daemon
                        // still sees the newest version last.
                        match cref {
                            Some(r) => {
                                wait_shas.push(r.sha.clone());
                                entries.push(CasFlushItem::Ref(r.clone()));
                            }
                            None => entries.push(CasFlushItem::Object(obj.clone())),
                        }
                    }
                    jobs.push(job);
                }
                if !pending.is_empty() {
                    // Requeue the conflicting tail for the next merge
                    // and guarantee a wakeup for it (its original
                    // signals may already have been burned by empty
                    // iterations).
                    while let Some(job) = pending.pop_back() {
                        st.queue.push_front(job);
                    }
                    work.release();
                }
                if !entries.is_empty() {
                    st.uploads += 1;
                }
                (jobs, entries, wait_shas, seen)
            };
            let pickup_at = sim.now();
            // Dedupe can empty the merge entirely; skip the protocol
            // call then (P3 would otherwise log a phantom empty WAL
            // transaction and every protocol would bill a wasted op).
            // The crash point models the background flusher dying with
            // batches still queued: the merge is lost, the error
            // surfaces at the next barrier or ticket wait.
            let result = if entries.is_empty() {
                Ok(())
            } else {
                config.step("client:flusher:flush").and_then(|()| {
                    // The WAL must never reference a hash whose publish
                    // is not durable yet: wait out (or fail on) every
                    // referenced publish before logging the delta.
                    if let Some(cas) = &cas {
                        for sha in &wait_shas {
                            cas.wait(sha)?;
                        }
                    }
                    match &p3cas {
                        Some(p3) => p3.flush_with_cas(entries),
                        None => inner.flush(FlushBatch {
                            objects: entries
                                .into_iter()
                                .map(|item| match item {
                                    CasFlushItem::Object(o) => o,
                                    CasFlushItem::Ref(_) => {
                                        unreachable!("CAS ref staged without a CAS store")
                                    }
                                })
                                .collect(),
                        }),
                    }
                })
            };
            let durable_at = sim.now();
            let mut st = shared.lock();
            match &result {
                Ok(()) => {
                    // Latency samples are flush→resolve: a failed merge
                    // never resolved Ok, so it contributes no sample (it
                    // surfaces as an error at the barrier instead), and
                    // early jobs sampled at submit already.
                    for job in &jobs {
                        if !job.early && st.samples.len() < LATENCY_CAP {
                            st.samples.push(FlushSample {
                                total: durable_at.saturating_duration_since(job.submitted_at),
                                admission: job.admission,
                                queued: pickup_at.saturating_duration_since(job.submitted_at),
                                upload: durable_at.saturating_duration_since(pickup_at),
                            });
                        }
                    }
                    let cap = config.dedupe_cap;
                    st.record_persisted(merged_ids, cap)
                }
                Err(e) => {
                    let start = st.completed;
                    let end = start + jobs.len() as u64;
                    st.errors.push_back((start, end, e.clone()));
                    if st.errors.len() > ERROR_CAP {
                        st.errors.pop_front();
                    }
                }
            }
            st.completed += jobs.len() as u64;
            let completed = st.completed;
            st.waiters.retain(|(target, sem)| {
                let reached = *target <= completed;
                if reached {
                    sem.release();
                }
                !reached
            });
            drop(st);
            for job in jobs {
                // Idempotent: early jobs keep the Ok they resolved at
                // submit.
                job.ticket.resolve(result.clone());
            }
        }
    }

    /// Routes each object of `batch` through the content-addressed
    /// store: returns one `Option<CasRef>` per object (in order) and
    /// kicks off speculative background publishes for first-seen
    /// content. Runs on the submitting thread *before* admission, so
    /// publishes overlap the backpressure wait; costs no virtual time
    /// itself.
    fn stage(&self, batch: &FlushBatch) -> Vec<Option<CasRef>> {
        let Some(cas) = &self.cas else {
            return vec![None; batch.objects.len()];
        };
        let mut refs = Vec::with_capacity(batch.objects.len());
        let mut publishes = Vec::new();
        for obj in &batch.objects {
            match cas.stage(obj) {
                Some((r, publish)) => {
                    refs.push(Some(r));
                    publishes.extend(publish);
                }
                None => refs.push(None),
            }
        }
        if !publishes.is_empty() {
            let cas = cas.clone();
            let sim = self.sim.clone();
            let concurrency = self.config.upload_concurrency;
            // Fire-and-forget: waiters rendezvous through CasStore
            // state, and the flusher's `wait` is the durability fence.
            let _publisher = self.sim.spawn(move || {
                let tasks: Vec<_> = publishes
                    .into_iter()
                    .map(|unit| {
                        let cas = cas.clone();
                        move || cas.publish(unit)
                    })
                    .collect();
                sim.run_parallel(concurrency, tasks);
            });
        }
        refs
    }

    fn submit(
        &self,
        batch: FlushBatch,
        refs: Vec<Option<CasRef>>,
        admission: Duration,
    ) -> FlushTicket {
        // A fully CAS-routed batch is already content-durable or riding
        // in-flight publishes the flusher will fence on: its ticket
        // settles now (the delta it would wait for is empty) and `sync`
        // remains the barrier that surfaces any publish failure.
        let early = refs.iter().all(Option::is_some);
        let ticket = Arc::new(TicketState {
            sim: self.sim.clone(),
            sem: Mutex::new(None),
            result: Mutex::new(None),
        });
        {
            let mut st = self.shared.lock();
            st.submitted += 1;
            if early && st.samples.len() < LATENCY_CAP {
                st.samples.push(FlushSample {
                    total: Duration::ZERO,
                    admission,
                    queued: Duration::ZERO,
                    upload: Duration::ZERO,
                });
            }
            st.queue.push_back(Job {
                batch,
                refs,
                ticket: ticket.clone(),
                submitted_at: self.sim.now(),
                admission,
                early,
            });
        }
        self.work.release();
        if early {
            ticket.resolve(Ok(()));
        }
        FlushTicket { state: ticket }
    }

    fn sync(&self) -> ClientResult<()> {
        self.sync_raw().map_err(ClientError::from)
    }

    fn sync_raw(&self) -> std::result::Result<(), ProtocolError> {
        let (target, barrier) = {
            let mut st = self.shared.lock();
            let target = st.submitted;
            if st.completed >= target {
                (target, None)
            } else {
                let sem = SimSemaphore::new(&self.sim, 0);
                st.waiters.push((target, sem.clone()));
                (target, Some(sem))
            }
        };
        if let Some(sem) = barrier {
            sem.acquire().forget();
        }
        // Report every error whose merge overlapped this barrier's jobs
        // (`start < target`), but retire an error only once a barrier
        // fully covers its merge (`end <= target`): a failed merge that
        // mixed pre-barrier jobs with another thread's later work is
        // reported to *both* threads' barriers, never lost to one.
        let mut first = None;
        {
            let mut st = self.shared.lock();
            st.errors.retain(|(start, end, e)| {
                if *start < target && first.is_none() {
                    first = Some(e.clone());
                }
                *end > target
            });
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn invalidate_key(&self, key: &str) {
        self.shared.lock().invalidate_key(key);
    }

    fn stats(&self) -> PipelineStats {
        let (cas_probes, cas_hits, cas_publishes) = self
            .cas
            .as_ref()
            .map(CasStore::counters)
            .unwrap_or_default();
        let st = self.shared.lock();
        PipelineStats {
            submitted: st.submitted,
            completed: st.completed,
            uploads: st.uploads,
            deduped_objects: st.deduped,
            dedupe_evictions: st.evictions,
            cas_probes,
            cas_hits,
            cas_publishes,
        }
    }

    fn shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.work.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CouplingCheck, FlushObject};
    use cloudprov_cloud::{AwsProfile, Blob};
    use cloudprov_pass::{Attr, FlushNode, NodeKind, ProvenanceRecord, Uuid};
    use std::time::Duration;

    fn setup(protocol: Protocol) -> (Sim, CloudEnv, ProvenanceClient) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let client = ProvenanceClient::builder(protocol).build(&env);
        (sim, env, client)
    }

    fn file_obj(uuid: u128, version: u32, key: &str, data: &str) -> FlushObject {
        let id = PNodeId {
            uuid: Uuid(uuid),
            version,
        };
        let blob = Blob::from(data);
        FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some(format!("/{key}")),
                records: vec![
                    ProvenanceRecord::new(id, Attr::Type, "file"),
                    ProvenanceRecord::new(id, Attr::Name, key),
                    ProvenanceRecord::new(
                        id,
                        Attr::DataHash,
                        format!("{:016x}", blob.content_fingerprint()),
                    ),
                ],
                data_hash: Some(blob.content_fingerprint()),
            },
            key,
            blob,
        )
    }

    #[test]
    fn builder_constructs_every_protocol() {
        for protocol in Protocol::ALL {
            let (_sim, _env, client) = setup(protocol);
            assert_eq!(client.name(), protocol.name());
            assert_eq!(client.protocol(), protocol);
            assert_eq!(
                client.provenance_store().is_some(),
                protocol.records_provenance()
            );
            assert_eq!(client.commit_daemon().is_some(), protocol == Protocol::P3);
            assert_eq!(client.wal_url().is_some(), protocol == Protocol::P3);
            assert_eq!(client.cleaner_daemon().is_some(), protocol == Protocol::P3);
            assert!(client.pipeline_stats().is_none(), "blocking by default");
        }
    }

    #[test]
    fn ancestry_index_setter_gates_the_index_domain() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let indexed = ProvenanceClient::builder(Protocol::P3)
            .queue("wal-idx-on")
            .build(&env);
        assert!(matches!(
            indexed.provenance_store(),
            Some(ProvenanceStore::Database {
                index_domain: Some(_),
                ..
            })
        ));
        let plain = ProvenanceClient::builder(Protocol::P3)
            .queue("wal-idx-off")
            .ancestry_index(false)
            .build(&env);
        assert!(matches!(
            plain.provenance_store(),
            Some(ProvenanceStore::Database {
                index_domain: None,
                ..
            })
        ));
        // An index-less client's commits write no index items.
        plain
            .flush(FlushBatch {
                objects: vec![file_obj(77, 1, "noidx", "x")],
            })
            .unwrap();
        plain.drain().unwrap();
        assert_eq!(
            env.sdb()
                .peek_item_count(&crate::index::index_domain("provenance")),
            0
        );
    }

    #[test]
    fn protocol_parses_and_displays() {
        for p in Protocol::ALL {
            assert_eq!(p.name().parse::<Protocol>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert!("P9".parse::<Protocol>().is_err());
    }

    #[test]
    fn blocking_flush_then_read_roundtrips() {
        for protocol in [Protocol::P1, Protocol::P2, Protocol::P3] {
            let (_sim, _env, client) = setup(protocol);
            client
                .flush(FlushBatch {
                    objects: vec![file_obj(1, 1, "out", "payload")],
                })
                .unwrap();
            client.drain().unwrap();
            let r = client.read("out").unwrap();
            assert_eq!(r.data, Blob::from("payload"), "{protocol}");
            assert_eq!(r.coupling, CouplingCheck::Coupled, "{protocol}");
        }
    }

    #[test]
    fn flush_async_ticket_resolves_on_blocking_client() {
        let (_sim, _env, client) = setup(Protocol::P2);
        let ticket = client.flush_async(FlushBatch {
            objects: vec![file_obj(2, 1, "f", "x")],
        });
        assert!(ticket.is_done());
        ticket.wait().unwrap();
    }

    #[test]
    fn pipelined_flush_returns_before_durability() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        // Real latencies so the pipeline has something to hide.
        profile.s3.write_base = Duration::from_millis(100);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P1)
            .pipelined()
            .build(&env);
        let t0 = sim.now();
        let ticket = client.flush_async(FlushBatch {
            objects: vec![file_obj(3, 1, "f", "x")],
        });
        assert_eq!(sim.now(), t0, "enqueue must cost no virtual time");
        ticket.wait().unwrap();
        assert!(sim.now() > t0, "the upload itself does take time");
        assert!(env.s3().peek_committed("data", "f").is_some());
    }

    #[test]
    fn pipelined_batches_coalesce_and_dedupe_ancestors() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.s3.write_base = Duration::from_millis(50);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P2)
            .pipelined()
            .build(&env);
        // A shared ancestor rides in every hand-built batch; the flusher
        // must upload it exactly once.
        let ancestor = file_obj(10, 1, "shared", "anc");
        for i in 0..8u128 {
            client
                .flush(FlushBatch {
                    objects: vec![ancestor.clone(), file_obj(20 + i, 1, &format!("f{i}"), "d")],
                })
                .unwrap();
        }
        client.drain().unwrap();
        let stats = client.pipeline_stats().unwrap();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        assert!(
            stats.uploads < 8,
            "queued batches must coalesce, got {} uploads",
            stats.uploads
        );
        assert!(
            stats.deduped_objects >= 6,
            "repeated ancestor must dedupe, got {}",
            stats.deduped_objects
        );
        for i in 0..8 {
            assert!(env.s3().peek_committed("data", &format!("f{i}")).is_some());
        }
        assert!(env.s3().peek_committed("data", "shared").is_some());
    }

    #[test]
    fn cas_covered_flush_settles_at_submit() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        // Real cloud latencies: without the content-addressed store the
        // ticket could not possibly resolve in zero virtual time.
        profile.s3.write_base = Duration::from_millis(200);
        profile.sdb.write_base = Duration::from_millis(200);
        profile.sqs.write_base = Duration::from_millis(150);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P3)
            .queue("wal-cas")
            .pipelined()
            .build(&env);
        let t0 = sim.now();
        let ticket = client.flush_async(FlushBatch {
            objects: vec![file_obj(40, 1, "fast", "payload")],
        });
        assert!(ticket.is_done(), "fully CAS-routed batch settles at submit");
        assert_eq!(sim.now(), t0, "submit costs no virtual time");
        ticket.wait().unwrap();
        // `sync` is the real durability barrier: it waits out the
        // speculative publish and the WAL delta.
        client.sync().unwrap();
        assert!(sim.now() > t0, "durability still takes cloud time");
        let stats = client.pipeline_stats().unwrap();
        assert_eq!(stats.cas_publishes, 1);
        assert_eq!(client.flush_latencies(), vec![Duration::ZERO]);
        let breakdown = client.flush_breakdown();
        assert_eq!(breakdown.len(), 1);
        assert_eq!(breakdown[0].upload, Duration::ZERO);
        client.drain().unwrap();
        assert!(env.s3().peek_committed("data", "fast").is_some());
    }

    #[test]
    fn evicted_ancestor_reuploads_ahead_of_its_descendant() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let client = ProvenanceClient::builder(Protocol::P3)
            .queue("wal-evict")
            .pipelined()
            .dedupe_cap(1)
            .build(&env);
        let ancestor = file_obj(50, 1, "anc", "ancestor-bytes");
        client
            .flush(FlushBatch {
                objects: vec![ancestor.clone(), file_obj(51, 1, "desc", "v1")],
            })
            .unwrap();
        client.drain().unwrap();
        let s1 = client.pipeline_stats().unwrap();
        assert!(
            s1.dedupe_evictions >= 1,
            "cap 1 must evict, got {}",
            s1.dedupe_evictions
        );
        // Delete the ancestor's object, then re-flush the *identical*
        // ancestor (its dedupe entry is long evicted) together with a
        // new descendant version in one batch. The merge must carry
        // both — an evicted entry may cost a redundant upload, never a
        // skipped one — with the ancestor at its ancestors-first
        // position, so the descendant cannot ship ahead of it.
        client.delete("anc").unwrap();
        assert!(env.s3().peek_committed("data", "anc").is_none());
        client
            .flush(FlushBatch {
                objects: vec![ancestor.clone(), file_obj(51, 2, "desc", "v2")],
            })
            .unwrap();
        client.drain().unwrap();
        let s2 = client.pipeline_stats().unwrap();
        assert_eq!(
            s2.uploads,
            s1.uploads + 1,
            "ancestor and descendant ride one merged upload"
        );
        assert_eq!(
            s2.deduped_objects, s1.deduped_objects,
            "nothing may dedupe away after the eviction"
        );
        // The deleted ancestor is restored from the content-addressed
        // store — the daemon re-copies `cas/<sha>` to the final key even
        // though it had materialized that sha before — and the
        // descendant moved to v2.
        assert_eq!(
            env.s3().peek_committed("data", "anc").unwrap().blob,
            Blob::from("ancestor-bytes")
        );
        assert_eq!(
            env.s3().peek_committed("data", "desc").unwrap().blob,
            Blob::from("v2")
        );
        // Fleet-wide dedupe still held: the re-flushed ancestor's
        // content was already published, so only three publishes ever
        // happened (anc, desc v1, desc v2).
        assert_eq!(s2.cas_publishes, 3);
    }

    #[test]
    fn sync_surfaces_background_errors() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let client = ProvenanceClient::builder(Protocol::P1)
            .step_hook(Arc::new(|step: &str| !step.starts_with("p1:data:")))
            .pipelined()
            .build(&env);
        client
            .flush(FlushBatch {
                objects: vec![file_obj(4, 1, "f", "x")],
            })
            .unwrap();
        let err = client.sync().unwrap_err();
        assert!(matches!(
            err,
            ClientError::Protocol(ProtocolError::Crashed { .. })
        ));
        // The error is consumed: a later barrier with no new failures is
        // clean.
        client.sync().unwrap();
    }

    #[test]
    fn sync_takes_all_accumulated_errors() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.s3.write_base = Duration::from_millis(50);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P1)
            .step_hook(Arc::new(|step: &str| !step.starts_with("p1:data:")))
            .pipelined()
            .build(&env);
        // Two failing batches, separated so each gets its own upload
        // (and therefore its own error) before the first barrier.
        for i in 0..2u128 {
            client
                .flush(FlushBatch {
                    objects: vec![file_obj(60 + i, 1, &format!("e{i}"), "x")],
                })
                .unwrap();
            sim.sleep(Duration::from_millis(200));
        }
        assert_eq!(client.pipeline_stats().unwrap().uploads, 2);
        client.sync().unwrap_err();
        // Both failures were consumed by that barrier: the next one must
        // not re-report a stale pre-barrier error.
        client.sync().unwrap();
    }

    #[test]
    fn rewrites_of_one_key_never_merge_into_one_upload() {
        // Two queued versions of the same key must flush in separate,
        // ordered uploads — a merged parallel upload could land the
        // older bytes last.
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.s3.write_base = Duration::from_millis(100);
        profile.s3.jitter_frac = 0.3;
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P1)
            .pipelined()
            .build(&env);
        // Keep the flusher busy so both rewrites queue up together.
        client
            .flush(FlushBatch {
                objects: vec![file_obj(95, 1, "filler", "f")],
            })
            .unwrap();
        sim.sleep(Duration::from_millis(10));
        client
            .flush(FlushBatch {
                objects: vec![file_obj(96, 1, "rw", "version-one")],
            })
            .unwrap();
        client
            .flush(FlushBatch {
                objects: vec![file_obj(96, 2, "rw", "version-two")],
            })
            .unwrap();
        client.drain().unwrap();
        assert_eq!(
            env.s3().peek_committed("data", "rw").unwrap().blob,
            Blob::from("version-two"),
            "the newest version must win"
        );
        assert_eq!(
            client.pipeline_stats().unwrap().uploads,
            3,
            "filler, v1 and v2 must be three separate uploads"
        );
    }

    #[test]
    fn delete_waits_out_queued_flushes_of_the_key() {
        // unlink after a pipelined close must not be overtaken by the
        // still-queued upload (which would resurrect the object).
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.s3.write_base = Duration::from_millis(100);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P2)
            .pipelined()
            .build(&env);
        client
            .flush(FlushBatch {
                objects: vec![file_obj(97, 1, "doomed", "x")],
            })
            .unwrap();
        client.delete("doomed").unwrap();
        client.drain().unwrap();
        sim.sleep(Duration::from_secs(1));
        assert!(
            env.s3().peek_committed("data", "doomed").is_none(),
            "queued upload must not resurrect a deleted object"
        );
    }

    #[test]
    fn delete_invalidates_the_dedupe_entry() {
        // Re-flushing identical content after a delete must reach the
        // cloud again, exactly as the blocking path would.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let client = ProvenanceClient::builder(Protocol::P2)
            .pipelined()
            .build(&env);
        let batch = FlushBatch {
            objects: vec![file_obj(90, 1, "reborn", "x")],
        };
        client.flush(batch.clone()).unwrap();
        client.drain().unwrap();
        assert!(env.s3().peek_committed("data", "reborn").is_some());
        client.delete("reborn").unwrap();
        assert!(env.s3().peek_committed("data", "reborn").is_none());
        client.flush(batch).unwrap();
        client.drain().unwrap();
        assert!(
            env.s3().peek_committed("data", "reborn").is_some(),
            "identical re-flush after delete must re-upload"
        );
        assert_eq!(client.pipeline_stats().unwrap().deduped_objects, 0);
    }

    #[test]
    fn overlapping_merge_failure_reaches_every_barrier() {
        // A failed merge can mix jobs from two threads; BOTH threads'
        // barriers must observe the failure (reported to each, retired
        // only by the barrier that fully covers the merge).
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.s3.write_base = Duration::from_millis(100);
        let env = CloudEnv::new(&sim, profile);
        let client = Arc::new(
            ProvenanceClient::builder(Protocol::P1)
                .step_hook(Arc::new(|step: &str| !step.contains(":data:bad")))
                .pipelined()
                .build(&env),
        );
        // Filler job the flusher picks up alone, keeping it busy while
        // A's and B's failing jobs queue up into one merge.
        client
            .flush(FlushBatch {
                objects: vec![file_obj(80, 1, "filler", "ok")],
            })
            .unwrap();
        let thread_a = {
            let client = client.clone();
            let sim2 = sim.clone();
            sim.spawn(move || {
                sim2.sleep(Duration::from_millis(10));
                client
                    .flush(FlushBatch {
                        objects: vec![file_obj(81, 1, "bad-a", "x")],
                    })
                    .unwrap();
                client.sync()
            })
        };
        let thread_b = {
            let client = client.clone();
            let sim2 = sim.clone();
            sim.spawn(move || {
                sim2.sleep(Duration::from_millis(20));
                client
                    .flush(FlushBatch {
                        objects: vec![file_obj(82, 1, "bad-b", "x")],
                    })
                    .unwrap();
                sim2.sleep(Duration::from_millis(400));
                client.sync()
            })
        };
        assert!(thread_a.join().is_err(), "A's barrier sees the failure");
        assert!(thread_b.join().is_err(), "B's barrier also sees it");
        client.sync().unwrap();
    }

    #[test]
    fn fully_deduped_merge_skips_the_protocol_call() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.sqs.write_base = Duration::from_millis(50);
        profile.s3.write_base = Duration::from_millis(50);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P3)
            .queue("wal-dedup")
            .pipelined()
            .build(&env);
        let batch = FlushBatch {
            objects: vec![file_obj(70, 1, "same", "x")],
        };
        // The duplicate queues while the first upload is in flight and
        // dedupes to an empty merge — no upload, and crucially no
        // phantom empty P3 WAL transaction.
        client.flush(batch.clone()).unwrap();
        client.flush(batch).unwrap();
        client.drain().unwrap();
        let stats = client.pipeline_stats().unwrap();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.uploads, 1, "empty merge must skip the upload");
        assert_eq!(
            client.commit_daemon().unwrap().committed_transactions(),
            1,
            "no phantom empty WAL transaction"
        );
    }

    #[test]
    fn drain_commits_p3_wal() {
        let (_sim, env, client) = setup(Protocol::P3);
        client
            .flush(FlushBatch {
                objects: vec![file_obj(5, 1, "out", "wal")],
            })
            .unwrap();
        assert!(env.s3().peek_committed("data", "out").is_none());
        client.drain().unwrap();
        assert!(env.s3().peek_committed("data", "out").is_some());
        assert_eq!(env.sqs().peek_depth(client.wal_url().unwrap()), 0);
    }

    #[test]
    fn pipelined_p3_drain_waits_for_log_phase_first() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.sqs.write_base = Duration::from_millis(20);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P3)
            .queue("wal-pipe")
            .pipelined()
            .build(&env);
        for i in 0..4u128 {
            client
                .flush(FlushBatch {
                    objects: vec![file_obj(30 + i, 1, &format!("g{i}"), "d")],
                })
                .unwrap();
        }
        client.drain().unwrap();
        for i in 0..4 {
            assert!(
                env.s3().peek_committed("data", &format!("g{i}")).is_some(),
                "g{i} must be committed after drain"
            );
        }
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0, "temps cleaned");
    }

    #[test]
    fn tickets_resolve_even_when_coalesced() {
        let sim = Sim::new();
        let mut profile = AwsProfile::instant();
        profile.s3.write_base = Duration::from_millis(50);
        let env = CloudEnv::new(&sim, profile);
        let client = ProvenanceClient::builder(Protocol::P1)
            .pipelined()
            .build(&env);
        let tickets: Vec<_> = (0..5u128)
            .map(|i| {
                client.flush_async(FlushBatch {
                    objects: vec![file_obj(40 + i, 1, &format!("t{i}"), "d")],
                })
            })
            .collect();
        for t in &tickets {
            t.wait().unwrap();
            assert!(t.is_done());
        }
        // Waiting twice is fine.
        tickets[0].wait().unwrap();
    }

    #[test]
    fn storage_accessor_bypasses_the_pipeline() {
        let (_sim, env, client) = setup(Protocol::P2);
        client
            .storage()
            .flush(FlushBatch {
                objects: vec![file_obj(6, 1, "direct", "x")],
            })
            .unwrap();
        assert!(env.s3().peek_committed("data", "direct").is_some());
    }
}
