//! Protocol P2: cloud store + cloud database (§4.3.2).
//!
//! Data objects live in S3 exactly as in P1; provenance goes into SimpleDB
//! with **one item per object version**, named `uuid_version` — so users
//! can tell which version provenance belongs to. Values above SimpleDB's
//! 1 KB attribute limit (think process environments) spill into separate
//! S3 objects referenced from the item.
//!
//! On flush: (1) spill oversized values, (2) store items via
//! `BatchPutAttributes` (≤25 items per call), (3) PUT the data object with
//! the UUID+version metadata.
//!
//! Properties (Table 1): still no data-coupling (detectable, as P1), but
//! **efficient query** — SimpleDB indexes every attribute, which is what
//! produces the order-of-magnitude query speedups of Table 5.

use cloudprov_cloud::{CloudEnv, CloudError, PutItem, BATCH_LIMIT};
use cloudprov_pass::PNodeId;

use crate::error::Result;
use crate::layout::{object_metadata, parse_object_metadata};
use crate::protocol::{
    detect_coupling, item_to_records, records_to_item, retry, CouplingCheck, FlushBatch,
    ProtocolConfig, ProvenanceStore, ReadResult, StorageProtocol,
};

/// Protocol P2: data in S3, provenance in SimpleDB.
#[derive(Clone)]
pub struct P2 {
    env: CloudEnv,
    config: ProtocolConfig,
}

impl std::fmt::Debug for P2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P2").finish()
    }
}

impl P2 {
    /// Creates the protocol, provisioning the SimpleDB domain.
    pub fn new(env: &CloudEnv, config: ProtocolConfig) -> P2 {
        env.sdb().create_domain(&config.layout.domain);
        P2 {
            env: env.clone(),
            config,
        }
    }

    /// Builds the SimpleDB items for a batch, spilling oversized values.
    fn build_items(&self, batch: &FlushBatch) -> Result<Vec<PutItem>> {
        let mut items = Vec::with_capacity(batch.objects.len());
        for obj in &batch.objects {
            if obj.node.records.is_empty() {
                continue;
            }
            self.config.step(&format!("p2:spill:{}", obj.node.id))?;
            items.push(records_to_item(
                self.env.sim(),
                self.env.s3(),
                &self.config.layout,
                self.config.retries,
                obj.node.id,
                &obj.node.records,
            )?);
        }
        Ok(items)
    }

    fn put_data(&self, batch: &FlushBatch) -> Result<()> {
        let sim = self.env.sim().clone();
        let files: Vec<_> = batch
            .objects
            .iter()
            .filter_map(|o| {
                o.key
                    .clone()
                    .zip(o.data.clone())
                    .map(|(k, d)| (k, d, o.node.id))
            })
            .collect();
        if self.config.strict_causal_order {
            for (key, data, id) in files {
                self.config.step(&format!("p2:data:{key}"))?;
                retry(&sim, self.config.retries, || {
                    self.env.s3().put(
                        &self.config.layout.data_bucket,
                        &key,
                        data.clone(),
                        object_metadata(id),
                    )
                })?;
            }
            return Ok(());
        }
        let tasks: Vec<_> = files
            .into_iter()
            .map(|(key, data, id)| {
                let this = self.clone();
                move || -> Result<()> {
                    this.config.step(&format!("p2:data:{key}"))?;
                    retry(this.env.sim(), this.config.retries, || {
                        this.env.s3().put(
                            &this.config.layout.data_bucket,
                            &key,
                            data.clone(),
                            object_metadata(id),
                        )
                    })?;
                    Ok(())
                }
            })
            .collect();
        let results = sim.run_parallel(self.config.upload_concurrency, tasks);
        results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(())
    }

    /// Fetches the provenance records for one exact version.
    fn version_records(&self, id: PNodeId) -> Result<Vec<cloudprov_pass::ProvenanceRecord>> {
        let attrs = retry(self.env.sim(), self.config.retries, || {
            self.env
                .sdb()
                .get_attributes(&self.config.layout.domain, &id.to_string())
        })?;
        Ok(item_to_records(&id.to_string(), &attrs))
    }
}

impl P2 {
    fn flush_impl(&self, batch: FlushBatch) -> Result<()> {
        if self.config.strict_causal_order {
            // One item at a time in ancestor order, then the data.
            let items = self.build_items(&batch)?;
            for item in items {
                self.config.step("p2:dbput")?;
                retry(self.env.sim(), self.config.retries, || {
                    self.env
                        .sdb()
                        .put_attributes(&self.config.layout.domain, item.clone())
                })?;
            }
            return self.put_data(&batch);
        }
        // The paper's evaluated implementation uploads data objects,
        // provenance and ancestors in parallel (§5): the provenance
        // pipeline (spill, then batched SimpleDB writes over the small
        // database pool) runs concurrently with the data PUTs.
        let sim = self.env.sim().clone();
        let this = self.clone();
        let prov_batch = batch.clone();
        let prov_thread = sim.spawn(move || this.flush_provenance(&prov_batch));
        let data_result = self.put_data(&batch);
        let prov_result = prov_thread.join();
        prov_result?;
        data_result
    }
}

impl P2 {
    /// The provenance half of a parallel-mode flush: spills over the
    /// object-store pool, then batched item writes over the database pool.
    fn flush_provenance(&self, batch: &FlushBatch) -> Result<()> {
        let sim = self.env.sim().clone();
        // Phase 1: build items, spilling >1 KB values (parallel per object).
        let spill_tasks: Vec<_> = batch
            .objects
            .iter()
            .filter(|o| !o.node.records.is_empty())
            .cloned()
            .map(|obj| {
                let this = self.clone();
                move || -> Result<PutItem> {
                    this.config.step(&format!("p2:spill:{}", obj.node.id))?;
                    records_to_item(
                        this.env.sim(),
                        this.env.s3(),
                        &this.config.layout,
                        this.config.retries,
                        obj.node.id,
                        &obj.node.records,
                    )
                }
            })
            .collect();
        let items = sim
            .run_parallel(self.config.upload_concurrency, spill_tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        // Phase 2: batched writes over the database connection pool.
        let db_batch = self.config.db_batch.clamp(1, BATCH_LIMIT);
        let batch_tasks: Vec<_> = items
            .chunks(db_batch)
            .map(|chunk| {
                let this = self.clone();
                let chunk = chunk.to_vec();
                move || -> Result<()> {
                    this.config.step("p2:dbput")?;
                    retry(this.env.sim(), this.config.retries, || {
                        this.env
                            .sdb()
                            .batch_put_attributes(&this.config.layout.domain, chunk.clone())
                    })?;
                    Ok(())
                }
            })
            .collect();
        sim.run_parallel(self.config.db_concurrency, batch_tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        Ok(())
    }
}

impl StorageProtocol for P2 {
    fn name(&self) -> &'static str {
        "P2"
    }

    fn flush(&self, batch: FlushBatch) -> Result<()> {
        self.flush_impl(batch)
    }

    fn read(&self, key: &str) -> Result<ReadResult> {
        let obj = retry(self.env.sim(), self.config.retries, || {
            self.env.s3().get(&self.config.layout.data_bucket, key)
        })?;
        let id = parse_object_metadata(&obj.meta);
        let coupling = match id {
            None => CouplingCheck::Unlinked,
            Some(id) => {
                // §4.3.2: detect mismatches by comparing the S3 version
                // with the provenance version; one-item-per-version means
                // we can "request the specific version of the provenance
                // we need from SimpleDB".
                match self.version_records(id) {
                    Ok(records) => detect_coupling(&obj.blob, Some(id), &records),
                    Err(crate::error::ProtocolError::Cloud(CloudError::NoSuchDomain(_))) => {
                        CouplingCheck::ProvenanceMissing
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        Ok(ReadResult {
            data: obj.blob,
            id,
            coupling,
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        retry(self.env.sim(), self.config.retries, || {
            self.env.s3().delete(&self.config.layout.data_bucket, key)
        })?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        match retry(self.env.sim(), self.config.retries, || {
            self.env.s3().head(&self.config.layout.data_bucket, key)
        }) {
            Ok(h) => Ok(Some(h.len)),
            Err(CloudError::NoSuchKey { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn provenance_store(&self) -> Option<ProvenanceStore> {
        Some(ProvenanceStore::Database {
            domain: self.config.layout.domain.clone(),
            spill_bucket: self.config.layout.prov_bucket.clone(),
            // P2 writes items from the client with no commit daemon in
            // the path, so nothing maintains an ancestry index for it.
            index_domain: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::{AwsProfile, Blob};
    use cloudprov_pass::{Attr, FlushNode, NodeKind, ProvenanceRecord, Uuid};
    use cloudprov_sim::Sim;
    use std::sync::Arc;

    use crate::protocol::FlushObject;

    fn setup() -> (Sim, CloudEnv, P2) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p2 = P2::new(&env, ProtocolConfig::default());
        (sim, env, p2)
    }

    fn file_obj(uuid: u128, version: u32, key: &str, data: &str) -> FlushObject {
        let id = PNodeId {
            uuid: Uuid(uuid),
            version,
        };
        let blob = Blob::from(data);
        FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some(key.to_string()),
                records: vec![
                    ProvenanceRecord::new(id, Attr::Type, "file"),
                    ProvenanceRecord::new(id, Attr::Name, key),
                    ProvenanceRecord::new(
                        id,
                        Attr::DataHash,
                        format!("{:016x}", blob.content_fingerprint()),
                    ),
                ],
                data_hash: Some(blob.content_fingerprint()),
            },
            key,
            blob,
        )
    }

    #[test]
    fn one_item_per_version_layout() {
        let (_sim, env, p2) = setup();
        p2.flush(FlushBatch {
            objects: vec![file_obj(1, 1, "foo", "a")],
        })
        .unwrap();
        p2.flush(FlushBatch {
            objects: vec![file_obj(1, 2, "foo", "b")],
        })
        .unwrap();
        let v1 = format!("{}_1", Uuid(1));
        let v2 = format!("{}_2", Uuid(1));
        assert!(env.sdb().peek_item("provenance", &v1).is_some());
        assert!(env.sdb().peek_item("provenance", &v2).is_some());
    }

    #[test]
    fn flush_then_read_is_coupled() {
        let (_sim, _env, p2) = setup();
        p2.flush(FlushBatch {
            objects: vec![file_obj(2, 1, "out", "payload")],
        })
        .unwrap();
        let r = p2.read("out").unwrap();
        assert_eq!(r.coupling, CouplingCheck::Coupled);
    }

    #[test]
    fn name_attribute_allows_reverse_lookup() {
        // §4.3.2: "The name attribute allows us to find an object from its
        // provenance."
        let (_sim, env, p2) = setup();
        p2.flush(FlushBatch {
            objects: vec![file_obj(3, 1, "data/report.csv", "x")],
        })
        .unwrap();
        let hits = env
            .sdb()
            .select_all("select * from provenance where name = 'data/report.csv'")
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, format!("{}_1", Uuid(3)));
    }

    #[test]
    fn oversized_values_spill_and_are_referenced() {
        let (_sim, env, p2) = setup();
        let id = PNodeId::initial(Uuid(4));
        let env_value = "PATH=/usr/bin\n".repeat(200); // ~2.8 KB
        let obj = FlushObject::provenance_only(FlushNode {
            id,
            kind: NodeKind::Process,
            name: Some("blast".into()),
            records: vec![
                ProvenanceRecord::new(id, Attr::Type, "process"),
                ProvenanceRecord::new(id, Attr::Env, env_value),
            ],
            data_hash: None,
        });
        p2.flush(FlushBatch { objects: vec![obj] }).unwrap();
        let item = env.sdb().peek_item("provenance", &id.to_string()).unwrap();
        let envattr = item.iter().find(|(k, _)| k == "env").unwrap();
        assert!(envattr.1.starts_with("@s3:"));
        assert!(env.s3().peek_count("prov", "xattr/") > 0);
    }

    #[test]
    fn batches_chunk_at_twenty_five() {
        let (_sim, env, p2) = setup();
        let objects: Vec<_> = (0..60)
            .map(|i| file_obj(100 + i as u128, 1, &format!("f{i}"), "x"))
            .collect();
        p2.flush(FlushBatch { objects }).unwrap();
        let usage = env.usage();
        let dbputs = usage.get(
            cloudprov_cloud::Actor::Client,
            cloudprov_cloud::Service::Database,
            cloudprov_cloud::Op::DbPut,
        );
        assert_eq!(dbputs.count, 3, "60 items => 25+25+10 => 3 batch calls");
        assert_eq!(env.sdb().peek_item_count("provenance"), 60);
    }

    #[test]
    fn crash_between_provenance_and_data_is_detectable() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| !step.starts_with("p2:data:"))),
            ..ProtocolConfig::default()
        };
        let p2 = P2::new(&env, cfg);
        let err = p2
            .flush(FlushBatch {
                objects: vec![file_obj(5, 1, "f", "x")],
            })
            .unwrap_err();
        assert!(matches!(err, crate::error::ProtocolError::Crashed { .. }));
        // Provenance is in SimpleDB but the data never made it.
        assert_eq!(env.sdb().peek_item_count("provenance"), 1);
        assert!(env.s3().peek_committed("data", "f").is_none());
    }

    #[test]
    fn stale_provenance_is_flagged_as_missing() {
        // Crash AFTER data but BEFORE provenance: version 2 data with only
        // version 1 provenance — the coupling check must catch it.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p2 = P2::new(&env, ProtocolConfig::default());
        p2.flush(FlushBatch {
            objects: vec![file_obj(6, 1, "f", "v1")],
        })
        .unwrap();
        // Simulate a client that wrote data v2 but died before SimpleDB.
        env.s3()
            .put(
                "data",
                "f",
                Blob::from("v2"),
                crate::layout::object_metadata(PNodeId {
                    uuid: Uuid(6),
                    version: 2,
                }),
            )
            .unwrap();
        let r = p2.read("f").unwrap();
        assert_eq!(r.coupling, CouplingCheck::ProvenanceMissing);
    }

    #[test]
    fn delete_keeps_provenance_items() {
        let (_sim, env, p2) = setup();
        p2.flush(FlushBatch {
            objects: vec![file_obj(7, 1, "f", "x")],
        })
        .unwrap();
        p2.delete("f").unwrap();
        assert!(env.s3().peek_committed("data", "f").is_none());
        assert_eq!(env.sdb().peek_item_count("provenance"), 1);
    }

    #[test]
    fn provenance_store_is_database_with_efficient_query() {
        let (_sim, _env, p2) = setup();
        assert!(matches!(
            p2.provenance_store(),
            Some(ProvenanceStore::Database { .. })
        ));
        assert!(p2.supports_efficient_query());
    }
}
