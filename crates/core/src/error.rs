//! Protocol-level error type.

use std::fmt;

use cloudprov_cloud::CloudError;
use cloudprov_pass::wire::WireError;

/// Errors surfaced by the storage protocols.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// An underlying cloud-service error (after retries were exhausted).
    Cloud(CloudError),
    /// Provenance bytes failed to decode.
    Wire(WireError),
    /// The injected crash plan stopped the client mid-protocol. Used by
    /// the fault-injection tests to cut a flush at a step boundary.
    Crashed {
        /// The step at which the client died.
        step: String,
    },
    /// An object was read but its provenance could not be located (a
    /// data-coupling or persistence violation surfaced to the caller).
    MissingProvenance {
        /// The object key whose provenance is missing.
        key: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A commit-daemon operation could not complete within its retry
    /// budget (e.g. a temp object never became visible).
    CommitStalled(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Cloud(e) => write!(f, "cloud service error: {e}"),
            ProtocolError::Wire(e) => write!(f, "{e}"),
            ProtocolError::Crashed { step } => write!(f, "client crashed at step '{step}'"),
            ProtocolError::MissingProvenance { key, reason } => {
                write!(f, "provenance missing for '{key}': {reason}")
            }
            ProtocolError::CommitStalled(msg) => write!(f, "commit stalled: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Cloud(e) => Some(e),
            ProtocolError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CloudError> for ProtocolError {
    fn from(e: CloudError) -> Self {
        ProtocolError::Cloud(e)
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtocolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = ProtocolError::MissingProvenance {
            key: "data/foo".into(),
            reason: "no provenance object".into(),
        };
        assert!(e.to_string().contains("data/foo"));
        let e = ProtocolError::Crashed { step: "p3:log:2".into() };
        assert!(e.to_string().contains("p3:log:2"));
    }

    #[test]
    fn cloud_errors_convert() {
        let e: ProtocolError = CloudError::NoSuchDomain("d".into()).into();
        assert!(matches!(e, ProtocolError::Cloud(_)));
    }
}
