//! Protocol-level error type.

use std::fmt;

use cloudprov_cloud::CloudError;
use cloudprov_pass::wire::WireError;

/// Errors surfaced by the storage protocols.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// An underlying cloud-service error (after retries were exhausted).
    Cloud(CloudError),
    /// Provenance bytes failed to decode.
    Wire(WireError),
    /// The injected crash plan stopped the client mid-protocol. Used by
    /// the fault-injection tests to cut a flush at a step boundary.
    Crashed {
        /// The step at which the client died.
        step: String,
    },
    /// An object was read but its provenance could not be located (a
    /// data-coupling or persistence violation surfaced to the caller).
    MissingProvenance {
        /// The object key whose provenance is missing.
        key: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A commit-daemon operation could not complete within its retry
    /// budget (e.g. a temp object never became visible).
    CommitStalled(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Cloud(e) => write!(f, "cloud service error: {e}"),
            ProtocolError::Wire(e) => write!(f, "{e}"),
            ProtocolError::Crashed { step } => write!(f, "client crashed at step '{step}'"),
            ProtocolError::MissingProvenance { key, reason } => {
                write!(f, "provenance missing for '{key}': {reason}")
            }
            ProtocolError::CommitStalled(msg) => write!(f, "commit stalled: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Cloud(e) => Some(e),
            ProtocolError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CloudError> for ProtocolError {
    fn from(e: CloudError) -> Self {
        ProtocolError::Cloud(e)
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtocolError>;

/// The one error type surfaced by the [`ProvenanceClient`] facade.
///
/// Callers of the session API handle this single enum instead of
/// juggling [`ProtocolError`], [`CloudError`], [`WireError`] and
/// [`DiscloseError`](cloudprov_pass::dpapi::DiscloseError) separately;
/// the `From` impls flatten nested protocol errors so a cloud failure
/// is always [`ClientError::Cloud`] no matter which layer raised it.
///
/// [`ProvenanceClient`]: crate::ProvenanceClient
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClientError {
    /// A protocol-level failure (crash injection, stalled commit,
    /// missing provenance).
    Protocol(ProtocolError),
    /// A cloud-service failure that survived retries.
    Cloud(CloudError),
    /// Provenance bytes failed to decode.
    Wire(WireError),
    /// An application disclosure was rejected.
    Disclose(cloudprov_pass::dpapi::DiscloseError),
    /// A query was requested from a protocol that stores no queryable
    /// provenance (the S3fs baseline).
    NoProvenanceStore {
        /// The protocol's display name.
        protocol: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Cloud(e) => write!(f, "cloud service error: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Disclose(e) => write!(f, "{e}"),
            ClientError::NoProvenanceStore { protocol } => {
                write!(f, "{protocol} stores no queryable provenance")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            ClientError::Cloud(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Disclose(e) => Some(e),
            ClientError::NoProvenanceStore { .. } => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Cloud(c) => ClientError::Cloud(c),
            ProtocolError::Wire(w) => ClientError::Wire(w),
            other => ClientError::Protocol(other),
        }
    }
}

impl From<CloudError> for ClientError {
    fn from(e: CloudError) -> Self {
        ClientError::Cloud(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<cloudprov_pass::dpapi::DiscloseError> for ClientError {
    fn from(e: cloudprov_pass::dpapi::DiscloseError) -> Self {
        ClientError::Disclose(e)
    }
}

/// Result alias for facade operations.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = ProtocolError::MissingProvenance {
            key: "data/foo".into(),
            reason: "no provenance object".into(),
        };
        assert!(e.to_string().contains("data/foo"));
        let e = ProtocolError::Crashed {
            step: "p3:log:2".into(),
        };
        assert!(e.to_string().contains("p3:log:2"));
    }

    #[test]
    fn cloud_errors_convert() {
        let e: ProtocolError = CloudError::NoSuchDomain("d".into()).into();
        assert!(matches!(e, ProtocolError::Cloud(_)));
    }

    #[test]
    fn client_error_flattens_nested_cloud_errors() {
        let nested: ClientError = ProtocolError::Cloud(CloudError::NoSuchDomain("d".into())).into();
        assert!(matches!(nested, ClientError::Cloud(_)));
        let direct: ClientError = CloudError::NoSuchDomain("d".into()).into();
        assert_eq!(nested, direct);
        let kept: ClientError = ProtocolError::Crashed { step: "s".into() }.into();
        assert!(matches!(kept, ClientError::Protocol(_)));
    }

    #[test]
    fn client_error_displays_carry_context() {
        let e = ClientError::NoProvenanceStore { protocol: "S3fs" };
        assert!(e.to_string().contains("S3fs"));
    }
}
