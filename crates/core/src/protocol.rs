//! The [`StorageProtocol`] abstraction and shared plumbing: flush batches,
//! coupling checks, crash hooks, retries, and record→item conversion with
//! the 1 KB spill rule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cloudprov_cloud::{Attributes, Blob, CloudEnv, CloudError, Metadata, ObjectStore, PutItem};
use cloudprov_pass::{Attr, AttrValue, FlushNode, PNodeId, ProvenanceRecord};
use cloudprov_sim::Sim;

use crate::error::{ProtocolError, Result};
use crate::layout::Layout;

/// One object of a flush: the provenance node plus (for files) its data.
#[derive(Clone, Debug)]
pub struct FlushObject {
    /// Provenance node extracted by the PASS observer.
    pub node: FlushNode,
    /// Data payload for persistent objects (files).
    pub data: Option<Blob>,
    /// Object-store key for persistent objects.
    pub key: Option<String>,
}

impl FlushObject {
    /// A provenance-only flush object (process, pipe).
    pub fn provenance_only(node: FlushNode) -> FlushObject {
        FlushObject {
            node,
            data: None,
            key: None,
        }
    }

    /// A file flush object carrying data.
    pub fn file(node: FlushNode, key: impl Into<String>, data: Blob) -> FlushObject {
        FlushObject {
            node,
            data: Some(data),
            key: Some(key.into()),
        }
    }
}

/// A batch handed to a protocol on `close`/`flush`: the unflushed ancestor
/// closure **in ancestors-first order**, the flushed object last.
///
/// §4.3: "Before sending the provenance and data of an object, we need to
/// identify the ancestors of the object and send any unrecorded ancestors
/// and their provenance to ensure multi-object causal ordering."
#[derive(Clone, Debug, Default)]
pub struct FlushBatch {
    /// Ancestors-first closure.
    pub objects: Vec<FlushObject>,
}

impl FlushBatch {
    /// Total provenance records in the batch.
    pub fn record_count(&self) -> usize {
        self.objects.iter().map(|o| o.node.records.len()).sum()
    }

    /// Total data bytes in the batch.
    pub fn data_bytes(&self) -> u64 {
        self.objects
            .iter()
            .filter_map(|o| o.data.as_ref())
            .map(Blob::len)
            .sum()
    }
}

/// Outcome of a provenance-aware read, including the data-coupling
/// *detection* verdict (§3: systems without write-time coupling must detect
/// violations on access).
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// The object data.
    pub data: Blob,
    /// The object's version link recorded in its metadata.
    pub id: Option<PNodeId>,
    /// Coupling verdict for this read.
    pub coupling: CouplingCheck,
}

/// Data/provenance coupling verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CouplingCheck {
    /// Provenance for exactly this data version was found and the data
    /// hash recorded in it matches the data read.
    Coupled,
    /// Provenance for this version was not (yet) visible — either an
    /// eventual-consistency window or a real violation.
    ProvenanceMissing,
    /// Provenance exists but describes different data (hash mismatch):
    /// using it would mislead, exactly the hazard §3 describes.
    HashMismatch,
    /// The data object itself carries no provenance link.
    Unlinked,
}

impl CouplingCheck {
    /// True when the data can safely be interpreted through its
    /// provenance.
    pub fn is_coupled(&self) -> bool {
        *self == CouplingCheck::Coupled
    }
}

/// Where a protocol keeps its queryable provenance — consumed by the query
/// engine to pick an execution strategy (Table 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvenanceStore {
    /// P1: provenance objects in S3; queries must list + GET + filter
    /// client-side.
    S3Objects {
        /// Bucket of provenance objects.
        bucket: String,
        /// Key prefix of provenance objects.
        prefix: String,
    },
    /// P2/P3: provenance items in SimpleDB; queries use indexed SELECTs.
    Database {
        /// SimpleDB domain.
        domain: String,
        /// Bucket holding spilled >1 KB values.
        spill_bucket: String,
        /// Sibling domain holding the commit-time ancestry index
        /// (reverse edges + program seeds), when one is maintained.
        /// `Some` for P3 (its commit daemon writes the index in the
        /// commit step); `None` for P2, whose client-side writes bypass
        /// the daemon. The query planner only considers the indexed
        /// path when this is present.
        index_domain: Option<String>,
    },
}

/// Hook invoked at protocol step boundaries; returning `false` kills the
/// client at that step (crash injection for the Table 1 experiments).
pub type StepHook = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// Builds a crash hook that kills the process at the `occurrence`-th
/// crossing of exactly `step` — and keeps it dead afterwards, like a
/// real process kill. Returns the hook plus a flag reporting whether it
/// ever fired: aimed chaos schedules check the flag so a renamed crash
/// point surfaces as a vacuous schedule instead of a silent pass.
pub fn kill_at_occurrence(step: impl Into<String>, occurrence: u64) -> (StepHook, Arc<AtomicBool>) {
    let target: String = step.into();
    let hits = Arc::new(AtomicU64::new(0));
    let dead = Arc::new(AtomicBool::new(false));
    let fired = dead.clone();
    let hook: StepHook = Arc::new(move |step: &str| {
        if dead.load(Ordering::Relaxed) {
            return false;
        }
        if step == target && hits.fetch_add(1, Ordering::Relaxed) + 1 == occurrence {
            dead.store(true, Ordering::Relaxed);
            return false;
        }
        true
    });
    (hook, fired)
}

/// Tuning and fault knobs shared by the protocols.
#[derive(Clone)]
pub struct ProtocolConfig {
    /// Cloud naming layout.
    pub layout: Layout,
    /// Client-side parallel connections for uploads (the paper's tool
    /// uploads objects, provenance and ancestors in parallel).
    pub upload_concurrency: usize,
    /// When true, ancestors are strictly persisted before descendants —
    /// the protocol as *specified*. When false, the batch uploads in
    /// parallel, matching the paper's evaluated implementation, which
    /// "violates multi-object causal ordering for P1 and P2" (§5).
    pub strict_causal_order: bool,
    /// Retries per cloud call before giving up.
    pub retries: usize,
    /// Crash-injection hook.
    pub step_hook: Option<StepHook>,
    /// P3 WAL message payload budget in bytes (≤ the 8 KB service limit).
    /// Exposed for the message-size ablation.
    pub wal_message_limit: usize,
    /// Items per SimpleDB batch write (≤ the 25-item service limit).
    /// Exposed for the batching ablation.
    pub db_batch: usize,
    /// Parallel connections for SimpleDB batch calls. Database client
    /// pools were far smaller than object-store pools in 2009 tooling —
    /// this is what leaves P2 the slowest protocol in the microbenchmark,
    /// as the paper observes.
    pub db_concurrency: usize,
    /// Whether P3's commit daemon maintains the commit-time ancestry
    /// index (`crate::index`) alongside the provenance items. Daemon-side
    /// work only — client-perceived latency and client op counts are
    /// unchanged.
    pub index: bool,
    /// Whether P3's log phase packs WAL messages into `SendMessageBatch`
    /// calls (≤10 bodies per request) instead of one send per message.
    /// On by default — one queue round trip and one billed request per
    /// batch. Turn off to reproduce the paper's 2009 client exactly:
    /// `SendMessageBatch` did not exist then, and Table 2/3 op counts
    /// assume one request per packet.
    pub wal_batch_send: bool,
    /// Parallel connections the P3 commit daemon opens inside one group
    /// commit: the per-file S3 COPY fan-out, the temp-object GC delete
    /// fan-out and the batched WAL-acknowledgement fan-out are all
    /// bounded by this (SimpleDB chunk writes use `db_concurrency`,
    /// matching the far smaller 2009 database pools). Daemon-side only —
    /// client op counts and latencies are unchanged.
    pub commit_parallelism: usize,
    /// Whether P3's commit daemon maintains the live change feed
    /// (`crate::feed`): staging a [`CommitEvent`](crate::feed::CommitEvent)
    /// per committed transaction before the WAL ack and publishing it to
    /// the installed sink afterwards. Off by default — the paper's
    /// tables assume no feed traffic; the fleet driver and the chaos
    /// explorer turn it on.
    pub feed: bool,
    /// Whether the pipelined P3 flush path routes eligible objects
    /// through the fleet-wide content-addressed ancestor store
    /// ([`crate::cas`]): content is published speculatively in the
    /// background and the WAL carries hash references, so a
    /// [`FlushTicket`](crate::FlushTicket) resolves on the delta alone.
    /// On by default; inert for P1/P2, blocking clients and the
    /// protocols as measured by the paper's tables.
    pub cas: bool,
    /// Capacity of the pipelined flusher's cross-batch dedupe set
    /// (persisted node digests). Evictions beyond the cap are counted in
    /// [`PipelineStats`](crate::PipelineStats) — an evicted ancestor is
    /// re-uploaded, never reordered.
    pub dedupe_cap: usize,
}

impl std::fmt::Debug for ProtocolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual only because `StepHook` is an opaque closure; every
        // other field prints in full.
        f.debug_struct("ProtocolConfig")
            .field("layout", &self.layout)
            .field("upload_concurrency", &self.upload_concurrency)
            .field("strict_causal_order", &self.strict_causal_order)
            .field("retries", &self.retries)
            .field(
                "step_hook",
                &self.step_hook.as_ref().map(|_| "<crash hook>"),
            )
            .field("wal_message_limit", &self.wal_message_limit)
            .field("db_batch", &self.db_batch)
            .field("db_concurrency", &self.db_concurrency)
            .field("index", &self.index)
            .field("wal_batch_send", &self.wal_batch_send)
            .field("commit_parallelism", &self.commit_parallelism)
            .field("feed", &self.feed)
            .field("cas", &self.cas)
            .field("dedupe_cap", &self.dedupe_cap)
            .finish()
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            layout: Layout::default(),
            upload_concurrency: 26,
            strict_causal_order: false,
            retries: 4,
            step_hook: None,
            wal_message_limit: cloudprov_cloud::MESSAGE_LIMIT,
            db_batch: cloudprov_cloud::BATCH_LIMIT,
            db_concurrency: 4,
            index: true,
            wal_batch_send: true,
            commit_parallelism: 16,
            feed: false,
            cas: true,
            dedupe_cap: 32_768,
        }
    }
}

impl ProtocolConfig {
    /// Checks the crash hook at a step boundary.
    pub(crate) fn step(&self, step: &str) -> Result<()> {
        match &self.step_hook {
            Some(h) if !h(step) => Err(ProtocolError::Crashed { step: step.into() }),
            _ => Ok(()),
        }
    }
}

/// The interface all three protocols implement: persist a flush batch,
/// read data back with coupling detection, and delete data (provenance
/// must survive: data-independent persistence, §3).
pub trait StorageProtocol: Send + Sync {
    /// Protocol name for reports ("S3fs", "P1", "P2", "P3").
    fn name(&self) -> &'static str;

    /// Persists a flush batch (data + provenance + unflushed ancestors).
    ///
    /// # Errors
    ///
    /// Propagates cloud errors after retries; [`ProtocolError::Crashed`]
    /// when the crash hook fires.
    fn flush(&self, batch: FlushBatch) -> Result<()>;

    /// Reads a data object and runs coupling detection against its stored
    /// provenance.
    ///
    /// # Errors
    ///
    /// [`CloudError::NoSuchKey`] (wrapped) if the data is not visible.
    fn read(&self, key: &str) -> Result<ReadResult>;

    /// Deletes a data object. Provenance is intentionally retained.
    ///
    /// # Errors
    ///
    /// Propagates cloud errors after retries.
    fn delete(&self, key: &str) -> Result<()>;

    /// `HEAD`s a data object: `Some(len)` if visible, `None` otherwise.
    /// This is s3fs's `getattr` — the chatty lookup traffic that
    /// dominates the paper's operation counts.
    ///
    /// # Errors
    ///
    /// Propagates cloud errors after retries (a missing key is `None`,
    /// not an error).
    fn stat(&self, key: &str) -> Result<Option<u64>>;

    /// Where queryable provenance lives, if the protocol stores any.
    fn provenance_store(&self) -> Option<ProvenanceStore>;

    /// Whether provenance queries are indexed (Table 1 "Efficient Query").
    fn supports_efficient_query(&self) -> bool {
        matches!(
            self.provenance_store(),
            Some(ProvenanceStore::Database { .. })
        )
    }
}

/// Retries a cloud call with exponential backoff (in virtual time) on
/// transient `ServiceUnavailable` failures; other errors pass through
/// immediately. The retry discipline every protocol path uses — public
/// so out-of-crate daemons (the fleet's sharded cleaners) reuse the
/// same policy.
pub fn retry_cloud<T>(
    sim: &Sim,
    attempts: usize,
    mut f: impl FnMut() -> std::result::Result<T, CloudError>,
) -> std::result::Result<T, CloudError> {
    let mut delay = Duration::from_millis(100);
    let mut last = None;
    for _ in 0..attempts.max(1) {
        match f() {
            Ok(v) => return Ok(v),
            Err(CloudError::ServiceUnavailable { service }) => {
                last = Some(CloudError::ServiceUnavailable { service });
                sim.sleep(delay);
                delay *= 2;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("retry loop ran at least once"))
}

/// Crate-internal alias: protocol code predates the public name.
pub(crate) use retry_cloud as retry;

/// Converts one node's records into a SimpleDB item, spilling values above
/// the 1 KB attribute limit into S3 (shared by P2's client path and P3's
/// commit daemon; `s3` determines which actor pays for the spill PUTs).
pub(crate) fn records_to_item(
    sim: &Sim,
    s3: &ObjectStore,
    layout: &Layout,
    retries: usize,
    id: PNodeId,
    records: &[ProvenanceRecord],
) -> Result<PutItem> {
    let mut attrs: Attributes = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let name = r.attr.as_str().to_string();
        let text = r.value.to_text();
        let value = if text.len() > cloudprov_cloud::ATTRIBUTE_LIMIT {
            let key = layout.spill_key(id, &name, i);
            retry(sim, retries, || {
                s3.put(
                    &layout.prov_bucket,
                    &key,
                    Blob::from(text.as_str()),
                    Metadata::new(),
                )
            })?;
            layout.spill_pointer(&key)
        } else {
            text
        };
        attrs.push((name, value));
    }
    Ok(PutItem {
        name: id.to_string(),
        attrs,
        replace: false,
    })
}

/// Reverse of the record-to-item conversion minus the spill resolution:
/// parses item
/// attributes back into records (spill pointers stay as opaque text; the
/// query engine resolves them on demand).
pub fn item_to_records(name: &str, attrs: &Attributes) -> Vec<ProvenanceRecord> {
    let Ok(subject) = name.parse::<PNodeId>() else {
        return Vec::new();
    };
    attrs
        .iter()
        .map(|(attr_name, value)| {
            let attr = Attr::from_name(attr_name);
            let val = if attr.is_xref() {
                value
                    .parse::<PNodeId>()
                    .map(AttrValue::Xref)
                    .unwrap_or_else(|_| AttrValue::Text(value.clone()))
            } else {
                AttrValue::Text(value.clone())
            };
            ProvenanceRecord {
                subject,
                attr,
                value: val,
            }
        })
        .collect()
}

/// Runs coupling detection given a data blob + its metadata link and the
/// provenance records found for it.
pub(crate) fn detect_coupling(
    data: &Blob,
    id: Option<PNodeId>,
    version_records: &[ProvenanceRecord],
) -> CouplingCheck {
    let Some(_id) = id else {
        return CouplingCheck::Unlinked;
    };
    if version_records.is_empty() {
        return CouplingCheck::ProvenanceMissing;
    }
    // A version can legitimately record several DataHash values: under
    // causality-based versioning one node version spans successive writes
    // by the same process, and each flush of the evolving content appends
    // another hash to the (unordered, multi-valued) attribute set. The
    // data is coupled when it matches ANY recorded state of this version;
    // it is a mismatch only when provenance exists yet describes none of
    // them.
    let mut saw_hash = false;
    let actual = format!("{:016x}", data.content_fingerprint());
    for r in version_records {
        if r.attr == Attr::DataHash {
            saw_hash = true;
            if r.value.to_text() == actual {
                return CouplingCheck::Coupled;
            }
        }
    }
    if saw_hash {
        CouplingCheck::HashMismatch
    } else {
        // No hash recorded (e.g. never-written pre-existing input): having
        // version records at all is the best evidence available.
        CouplingCheck::Coupled
    }
}

/// The provenance-free baseline: plain S3fs. Uploads data objects only —
/// the control every overhead in the paper is measured against.
#[derive(Debug, Clone)]
pub struct S3fsBaseline {
    env: CloudEnv,
    config: ProtocolConfig,
}

impl S3fsBaseline {
    /// Creates the baseline over a cloud environment.
    pub fn new(env: &CloudEnv, config: ProtocolConfig) -> S3fsBaseline {
        S3fsBaseline {
            env: env.clone(),
            config,
        }
    }
}

impl StorageProtocol for S3fsBaseline {
    fn name(&self) -> &'static str {
        "S3fs"
    }

    fn flush(&self, batch: FlushBatch) -> Result<()> {
        let sim = self.env.sim().clone();
        let files: Vec<(String, Blob)> = batch
            .objects
            .into_iter()
            .filter_map(|o| match (o.key, o.data) {
                (Some(k), Some(d)) => Some((k, d)),
                _ => None,
            })
            .collect();
        let bucket = self.config.layout.data_bucket.clone();
        let retries = self.config.retries;
        let tasks: Vec<_> = files
            .into_iter()
            .map(|(key, data)| {
                let s3 = self.env.s3().clone();
                let bucket = bucket.clone();
                let sim = sim.clone();
                let config = self.config.clone();
                move || -> Result<()> {
                    config.step(&format!("s3fs:data:{key}"))?;
                    retry(&sim, retries, || {
                        s3.put(&bucket, &key, data.clone(), Metadata::new())
                    })?;
                    Ok(())
                }
            })
            .collect();
        let results = sim.run_parallel(self.config.upload_concurrency, tasks);
        results.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(())
    }

    fn read(&self, key: &str) -> Result<ReadResult> {
        let obj = retry(self.env.sim(), self.config.retries, || {
            self.env.s3().get(&self.config.layout.data_bucket, key)
        })?;
        Ok(ReadResult {
            data: obj.blob,
            id: None,
            coupling: CouplingCheck::Unlinked,
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        retry(self.env.sim(), self.config.retries, || {
            self.env.s3().delete(&self.config.layout.data_bucket, key)
        })?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        match retry(self.env.sim(), self.config.retries, || {
            self.env.s3().head(&self.config.layout.data_bucket, key)
        }) {
            Ok(h) => Ok(Some(h.len)),
            Err(CloudError::NoSuchKey { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn provenance_store(&self) -> Option<ProvenanceStore> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::AwsProfile;
    use cloudprov_pass::{NodeKind, Uuid};

    fn node(id: PNodeId) -> FlushNode {
        FlushNode {
            id,
            kind: NodeKind::File,
            name: Some("/f".into()),
            records: vec![ProvenanceRecord::new(id, Attr::Name, "/f")],
            data_hash: None,
        }
    }

    #[test]
    fn batch_accounting() {
        let id = PNodeId::initial(Uuid(1));
        let batch = FlushBatch {
            objects: vec![FlushObject::file(node(id), "f", Blob::synthetic(100, 1))],
        };
        assert_eq!(batch.record_count(), 1);
        assert_eq!(batch.data_bytes(), 100);
    }

    #[test]
    fn s3fs_baseline_stores_data_without_provenance() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let fs = S3fsBaseline::new(&env, ProtocolConfig::default());
        let id = PNodeId::initial(Uuid(2));
        fs.flush(FlushBatch {
            objects: vec![FlushObject::file(node(id), "f", Blob::from("hello"))],
        })
        .unwrap();
        let r = fs.read("f").unwrap();
        assert_eq!(r.data, Blob::from("hello"));
        assert_eq!(r.coupling, CouplingCheck::Unlinked);
        assert!(fs.provenance_store().is_none());
        assert!(!fs.supports_efficient_query());
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let sim = Sim::new();
        let mut calls = 0;
        let r = retry(&sim, 5, || {
            calls += 1;
            if calls < 3 {
                Err(CloudError::ServiceUnavailable { service: "S3" })
            } else {
                Ok(42)
            }
        });
        assert_eq!(r.unwrap(), 42);
        assert!(sim.now().as_micros() > 0, "backoff consumed virtual time");
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let sim = Sim::new();
        let r: std::result::Result<(), _> = retry(&sim, 3, || {
            Err(CloudError::ServiceUnavailable { service: "S3" })
        });
        assert!(r.is_err());
    }

    #[test]
    fn retry_passes_through_hard_errors() {
        let sim = Sim::new();
        let mut calls = 0;
        let r: std::result::Result<(), _> = retry(&sim, 5, || {
            calls += 1;
            Err(CloudError::NoSuchDomain("d".into()))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn coupling_detection_verdicts() {
        let id = PNodeId::initial(Uuid(3));
        let data = Blob::from("x");
        let good_hash = format!("{:016x}", data.content_fingerprint());
        let recs = vec![ProvenanceRecord::new(id, Attr::DataHash, good_hash)];
        assert_eq!(
            detect_coupling(&data, Some(id), &recs),
            CouplingCheck::Coupled
        );

        let bad = vec![ProvenanceRecord::new(
            id,
            Attr::DataHash,
            "0000000000000000",
        )];
        assert_eq!(
            detect_coupling(&data, Some(id), &bad),
            CouplingCheck::HashMismatch
        );
        assert_eq!(
            detect_coupling(&data, Some(id), &[]),
            CouplingCheck::ProvenanceMissing
        );
        assert_eq!(detect_coupling(&data, None, &recs), CouplingCheck::Unlinked);
    }

    #[test]
    fn item_conversion_roundtrip() {
        let id = PNodeId::initial(Uuid(4));
        let other = PNodeId::initial(Uuid(5));
        let records = vec![
            ProvenanceRecord::new(id, Attr::Name, "foo"),
            ProvenanceRecord::new(id, Attr::Input, other),
        ];
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let item = records_to_item(&sim, env.s3(), &Layout::default(), 3, id, &records).unwrap();
        assert_eq!(item.name, id.to_string());
        let back = item_to_records(&item.name, &item.attrs);
        assert_eq!(back, records);
    }

    #[test]
    fn oversized_values_spill_to_s3() {
        let id = PNodeId::initial(Uuid(6));
        let big_env = "V".repeat(3000);
        let records = vec![ProvenanceRecord::new(id, Attr::Env, big_env.clone())];
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let layout = Layout::default();
        let item = records_to_item(&sim, env.s3(), &layout, 3, id, &records).unwrap();
        let (attr, value) = &item.attrs[0];
        assert_eq!(attr, "env");
        assert!(value.starts_with("@s3:"), "value must be a spill pointer");
        let (bucket, key) = Layout::parse_spill_pointer(value).unwrap();
        let spilled = env.s3().get(bucket, key).unwrap();
        assert_eq!(
            spilled.blob.as_inline().unwrap().as_ref(),
            big_env.as_bytes()
        );
    }

    #[test]
    fn config_debug_prints_every_field() {
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|_| true)),
            ..ProtocolConfig::default()
        };
        let dbg = format!("{cfg:?}");
        for field in [
            "layout",
            "upload_concurrency",
            "strict_causal_order",
            "retries",
            "step_hook",
            "wal_message_limit",
            "db_batch",
            "db_concurrency",
            "index",
            "wal_batch_send",
            "commit_parallelism",
            "feed",
            "cas",
            "dedupe_cap",
        ] {
            assert!(dbg.contains(field), "Debug output drops '{field}': {dbg}");
        }
    }

    #[test]
    fn crash_hook_aborts_at_step() {
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| step != "die-here")),
            ..ProtocolConfig::default()
        };
        assert!(cfg.step("fine").is_ok());
        assert!(matches!(
            cfg.step("die-here"),
            Err(ProtocolError::Crashed { .. })
        ));
    }
}
