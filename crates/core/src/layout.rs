//! Cloud naming layout shared by the protocols: buckets, key schemes and
//! the metadata fields that link a data object to its provenance.
//!
//! §4.3.1: "In the primary S3 object's metadata, we record a version number
//! and the uuid, thus linking the data and its provenance."

use cloudprov_pass::{PNodeId, Uuid};

/// Metadata key holding the object's provenance UUID.
pub const META_UUID: &str = "prov-uuid";
/// Metadata key holding the object's version at upload time.
pub const META_VERSION: &str = "prov-version";

/// Naming configuration for a protocol deployment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Bucket holding primary data objects.
    pub data_bucket: String,
    /// Bucket holding provenance objects (P1) and spilled values (P2/P3).
    pub prov_bucket: String,
    /// Key prefix of P1 provenance objects within `prov_bucket`.
    pub prov_prefix: String,
    /// Key prefix of spilled >1 KB attribute values within `prov_bucket`.
    pub spill_prefix: String,
    /// Key prefix of P3 temporary objects within `data_bucket`.
    pub temp_prefix: String,
    /// SimpleDB domain holding provenance items (P2/P3).
    pub domain: String,
}

impl Default for Layout {
    fn default() -> Self {
        Layout {
            data_bucket: "data".into(),
            prov_bucket: "prov".into(),
            prov_prefix: "p/".into(),
            spill_prefix: "xattr/".into(),
            temp_prefix: "tmp/".into(),
            domain: "provenance".into(),
        }
    }
}

impl Layout {
    /// Key of the P1 provenance object for an object UUID.
    pub fn prov_key(&self, uuid: Uuid) -> String {
        format!("{}{uuid}", self.prov_prefix)
    }

    /// Extracts the UUID from a P1 provenance-object key.
    pub fn uuid_of_prov_key(&self, key: &str) -> Option<Uuid> {
        key.strip_prefix(&self.prov_prefix)?.parse().ok()
    }

    /// Key of a spilled attribute value.
    pub fn spill_key(&self, node: PNodeId, attr: &str, idx: usize) -> String {
        format!("{}{node}/{attr}/{idx}", self.spill_prefix)
    }

    /// The pointer string stored in SimpleDB in place of a spilled value
    /// (§4.3.2: "We store provenance values larger than the 1KB SimpleDB
    /// limit as separate S3 objects, referenced from items in SimpleDB").
    pub fn spill_pointer(&self, key: &str) -> String {
        format!("@s3:{}/{key}", self.prov_bucket)
    }

    /// Parses a spill pointer back into `(bucket, key)`.
    pub fn parse_spill_pointer(value: &str) -> Option<(&str, &str)> {
        value.strip_prefix("@s3:")?.split_once('/')
    }

    /// Temp-object key for transaction `txn`, file index `idx` (P3 log
    /// phase).
    pub fn temp_key(&self, txn: Uuid, idx: usize) -> String {
        format!("{}{txn}/{idx}", self.temp_prefix)
    }
}

/// Builds the data+provenance-linking metadata for a data object.
pub fn object_metadata(id: PNodeId) -> cloudprov_cloud::Metadata {
    let mut m = cloudprov_cloud::Metadata::new();
    m.insert(META_UUID.to_string(), id.uuid.to_string());
    m.insert(META_VERSION.to_string(), id.version.to_string());
    m
}

/// Reads the provenance link back out of object metadata.
pub fn parse_object_metadata(meta: &cloudprov_cloud::Metadata) -> Option<PNodeId> {
    let uuid: Uuid = meta.get(META_UUID)?.parse().ok()?;
    let version: u32 = meta.get(META_VERSION)?.parse().ok()?;
    Some(PNodeId { uuid, version })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prov_key_roundtrip() {
        let l = Layout::default();
        let u = Uuid(0xdead_beef);
        let key = l.prov_key(u);
        assert_eq!(l.uuid_of_prov_key(&key), Some(u));
        assert!(l.uuid_of_prov_key("other/xyz").is_none());
    }

    #[test]
    fn metadata_roundtrip() {
        let id = PNodeId {
            uuid: Uuid(77),
            version: 4,
        };
        let meta = object_metadata(id);
        assert_eq!(parse_object_metadata(&meta), Some(id));
    }

    #[test]
    fn spill_pointer_roundtrip() {
        let l = Layout::default();
        let id = PNodeId::initial(Uuid(5));
        let key = l.spill_key(id, "env", 0);
        let ptr = l.spill_pointer(&key);
        let (bucket, parsed) = Layout::parse_spill_pointer(&ptr).unwrap();
        assert_eq!(bucket, "prov");
        assert_eq!(parsed, key);
        assert!(Layout::parse_spill_pointer("plain value").is_none());
    }

    #[test]
    fn temp_keys_group_by_transaction() {
        let l = Layout::default();
        let txn = Uuid(9);
        assert!(l.temp_key(txn, 0).starts_with("tmp/"));
        assert_ne!(l.temp_key(txn, 0), l.temp_key(txn, 1));
    }
}
