//! Protocol P3: cloud store + cloud database + messaging service (§4.3.3).
//!
//! P3 is the paper's most robust protocol — the only one providing
//! (eventual) **provenance data-coupling**. The trick is a write-ahead log
//! kept *in the cloud*: an SQS queue. A crashed client's partially-logged
//! transaction is simply ignored; a completely-logged transaction can be
//! committed by *any* machine, so a crash between logging and committing
//! loses nothing (using a local log instead would).
//!
//! **Log phase** (client, on close/flush): store each file's data under a
//! temporary S3 name; chunk the provenance of the object *and all its
//! not-yet-written ancestors* into ≤8 KB WAL messages tagged with a
//! transaction id, sequence number and total; send them (parallel sends
//! are safe — ordering is reconstructed from sequence numbers, which is
//! how P3 keeps causal ordering without careful upload ordering).
//!
//! **Commit phase** (commit daemon, asynchronous): assemble complete
//! transactions; `COPY` each temporary object to its permanent name
//! (stamping the new version — S3 has no rename, and §4.3.3 notes copies
//! cost $0.01 per thousand); spill >1 KB values to S3;
//! `BatchPutAttributes` the items; `DELETE` the temp objects and the WAL
//! messages. Data commits before provenance so a transaction whose temp
//! object was lost with a dead client stalls before any provenance lands
//! (see `commit_txn`); stalled transactions are skipped, redeliver, and
//! ultimately expire with SQS retention.
//!
//! **Garbage collection**: SQS deletes messages after 4 days on its own;
//! a cleaner daemon reaps temporary objects older than 4 days that belong
//! to transactions that never completed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cloudprov_cloud::{
    Actor, CloudEnv, CloudError, MetadataDirective, PutItem, BATCH_LIMIT, MESSAGE_LIMIT,
};
use cloudprov_pass::wire;
use cloudprov_pass::{PNodeId, ProvenanceRecord, Uuid};
use cloudprov_sim::SimHandle;

use crate::error::{ProtocolError, Result};
use crate::layout::{object_metadata, parse_object_metadata};
use crate::protocol::{
    detect_coupling, item_to_records, records_to_item, retry, CouplingCheck, FlushBatch,
    ProtocolConfig, ProvenanceStore, ReadResult, StorageProtocol,
};

/// Room reserved in each WAL message for the `TXN` header line.
const HEADER_ROOM: usize = 80;

/// Protocol P3: S3 + SimpleDB + SQS write-ahead log.
#[derive(Clone)]
pub struct P3 {
    env: CloudEnv,
    config: ProtocolConfig,
    wal_url: String,
    rng: Arc<Mutex<SmallRng>>,
}

impl std::fmt::Debug for P3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P3").field("wal", &self.wal_url).finish()
    }
}

impl P3 {
    /// Creates the protocol; `queue_name` names this client's WAL queue
    /// (each client has its own, §4.3.3).
    pub fn new(env: &CloudEnv, config: ProtocolConfig, queue_name: &str) -> P3 {
        Self::with_identity(env, config, queue_name, queue_name)
    }

    /// Creates the protocol with an explicit client identity seeding the
    /// transaction-id generator. In the paper each client owns its queue,
    /// so the queue name doubles as the identity; a *sharded* fleet has
    /// many clients logging to one shard queue, and their id streams must
    /// not collide — interleaved WAL messages from two clients under one
    /// transaction id would reassemble into garbage.
    pub fn with_identity(
        env: &CloudEnv,
        config: ProtocolConfig,
        queue_name: &str,
        identity: &str,
    ) -> P3 {
        env.sdb().create_domain(&config.layout.domain);
        if config.index {
            env.sdb()
                .create_domain(&crate::index::index_domain(&config.layout.domain));
        }
        let wal_url = env.sqs().create_queue(queue_name);
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in identity.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0100_0000_01b3);
        }
        P3 {
            env: env.clone(),
            config,
            wal_url,
            rng: Arc::new(Mutex::new(SmallRng::seed_from_u64(seed))),
        }
    }

    /// URL of this client's WAL queue.
    pub fn wal_url(&self) -> &str {
        &self.wal_url
    }

    /// Builds the commit daemon for this WAL (run it with
    /// [`CommitDaemon::spawn`] or drive it manually in tests).
    pub fn commit_daemon(&self) -> CommitDaemon {
        CommitDaemon::new(&self.env, self.config.clone(), &self.wal_url)
    }

    /// Builds the cleaner daemon reaping orphaned temp objects.
    pub fn cleaner_daemon(&self) -> CleanerDaemon {
        CleanerDaemon::new(&self.env, self.config.clone())
    }

    fn fresh_txn(&self) -> Uuid {
        Uuid(self.rng.lock().gen())
    }

    /// Serializes a batch into WAL message bodies.
    ///
    /// Lines are either `OBJ\t<temp>\t<final>\t<node>` (one per file) or
    /// wire-encoded provenance records; they are packed greedily into
    /// bodies that, with the header, stay within the 8 KB SQS limit.
    fn build_messages(
        txn: Uuid,
        files: &[(String, String, PNodeId)],
        records: &[ProvenanceRecord],
        message_limit: usize,
    ) -> Vec<String> {
        let limit = message_limit.clamp(HEADER_ROOM + 64, MESSAGE_LIMIT) - HEADER_ROOM;
        let mut lines: Vec<String> = Vec::new();
        for (temp, final_key, id) in files {
            lines.push(format!("OBJ\t{temp}\t{final_key}\t{id}\n"));
        }
        for r in records {
            lines.push(wire::encode_record(r));
        }
        let mut bodies: Vec<String> = Vec::new();
        let mut cur = String::new();
        for line in lines {
            assert!(
                line.len() <= limit,
                "WAL line of {} bytes exceeds message capacity",
                line.len()
            );
            if !cur.is_empty() && cur.len() + line.len() > limit {
                bodies.push(std::mem::take(&mut cur));
            }
            cur.push_str(&line);
        }
        if !cur.is_empty() || bodies.is_empty() {
            bodies.push(cur);
        }
        let total = bodies.len();
        bodies
            .into_iter()
            .enumerate()
            .map(|(seq, body)| format!("TXN\t{txn}\t{seq}\t{total}\n{body}"))
            .collect()
    }
}

impl StorageProtocol for P3 {
    fn name(&self) -> &'static str {
        "P3"
    }

    /// The **log phase**. Returns once everything is durably in the WAL —
    /// the commit daemon finishes asynchronously, which is why P3's
    /// client-side elapsed times exclude it (§5).
    fn flush(&self, batch: FlushBatch) -> Result<()> {
        let sim = self.env.sim().clone();
        let txn = self.fresh_txn();
        let layout = &self.config.layout;

        // 1. Store file data under temporary names (parallel).
        let files: Vec<(String, String, PNodeId, cloudprov_cloud::Blob)> = batch
            .objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.key
                    .clone()
                    .zip(o.data.clone())
                    .map(|(key, data)| (layout.temp_key(txn, i), key, o.node.id, data))
            })
            .collect();
        // 2. Build the WAL messages up front (temp keys are known before
        //    the temp PUTs complete), then run temp PUTs and WAL sends in
        //    ONE task pool: the paper's implementation sends packets in
        //    parallel — safe because ordering is reconstructed from
        //    sequence numbers and the commit daemon retries until temp
        //    objects become visible.
        let file_meta: Vec<(String, String, PNodeId)> = files
            .iter()
            .map(|(t, f, id, _)| (t.clone(), f.clone(), *id))
            .collect();
        let records: Vec<ProvenanceRecord> = batch
            .objects
            .iter()
            .flat_map(|o| o.node.records.iter().cloned())
            .collect();
        let messages =
            Self::build_messages(txn, &file_meta, &records, self.config.wal_message_limit);
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = Vec::new();
        for (temp, _, _, data) in &files {
            let (temp, data) = (temp.clone(), data.clone());
            let this = self.clone();
            tasks.push(Box::new(move || -> Result<()> {
                this.config.step(&format!("p3:temp:{temp}"))?;
                retry(this.env.sim(), this.config.retries, || {
                    this.env.s3().put(
                        &this.config.layout.data_bucket,
                        &temp,
                        data.clone(),
                        cloudprov_cloud::Metadata::new(),
                    )
                })?;
                Ok(())
            }));
        }
        for (seq, body) in messages.into_iter().enumerate() {
            let this = self.clone();
            tasks.push(Box::new(move || -> Result<()> {
                this.config.step(&format!("p3:wal:{seq}"))?;
                retry(this.env.sim(), this.config.retries, || {
                    this.env
                        .sqs()
                        .send(&this.wal_url, Bytes::from(body.clone()))
                })?;
                Ok(())
            }));
        }
        sim.run_parallel(self.config.upload_concurrency, tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        Ok(())
    }

    fn read(&self, key: &str) -> Result<ReadResult> {
        let obj = retry(self.env.sim(), self.config.retries, || {
            self.env.s3().get(&self.config.layout.data_bucket, key)
        })?;
        let id = parse_object_metadata(&obj.meta);
        let coupling = match id {
            None => CouplingCheck::Unlinked,
            Some(id) => {
                let attrs = retry(self.env.sim(), self.config.retries, || {
                    self.env
                        .sdb()
                        .get_attributes(&self.config.layout.domain, &id.to_string())
                })?;
                let records = item_to_records(&id.to_string(), &attrs);
                detect_coupling(&obj.blob, Some(id), &records)
            }
        };
        Ok(ReadResult {
            data: obj.blob,
            id,
            coupling,
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        retry(self.env.sim(), self.config.retries, || {
            self.env.s3().delete(&self.config.layout.data_bucket, key)
        })?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        match retry(self.env.sim(), self.config.retries, || {
            self.env.s3().head(&self.config.layout.data_bucket, key)
        }) {
            Ok(h) => Ok(Some(h.len)),
            Err(CloudError::NoSuchKey { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn provenance_store(&self) -> Option<ProvenanceStore> {
        Some(ProvenanceStore::Database {
            domain: self.config.layout.domain.clone(),
            spill_bucket: self.config.layout.prov_bucket.clone(),
            index_domain: self
                .config
                .index
                .then(|| crate::index::index_domain(&self.config.layout.domain)),
        })
    }
}

struct TxnBuf {
    total: Option<usize>,
    parts: BTreeMap<usize, String>,
    receipts: Vec<String>,
}

/// Outcome of one commit-daemon poll.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// WAL messages received this poll.
    pub messages: usize,
    /// Transactions committed this poll.
    pub committed: usize,
    /// Transactions whose commit stalled (a referenced temp object never
    /// became copyable — e.g. the client died after logging the WAL but
    /// before its temp PUT landed). Stalled transactions are skipped, not
    /// fatal: their messages redeliver after the visibility timeout and
    /// ultimately expire with SQS retention, which is the paper's
    /// garbage-collection story for dead clients.
    pub stalled: usize,
}

/// Callback invoked (with the transaction id) each time a daemon commits
/// a transaction. The fleet's daemon pool uses it as a cross-daemon
/// double-commit detector.
pub type CommitListener = Arc<dyn Fn(Uuid) + Send + Sync>;

/// The asynchronous commit daemon (§4.3.3 commit phase).
pub struct CommitDaemon {
    env: CloudEnv,
    config: ProtocolConfig,
    wal_url: String,
    buf: Mutex<BTreeMap<Uuid, TxnBuf>>,
    committed: Mutex<BTreeSet<Uuid>>,
    committed_count: AtomicU64,
    listener: Mutex<Option<CommitListener>>,
}

impl std::fmt::Debug for CommitDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitDaemon")
            .field("wal", &self.wal_url)
            .field("committed", &self.committed_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl CommitDaemon {
    /// Creates a daemon reading `wal_url`. Any machine can run one — that
    /// is the crash-tolerance argument for putting the WAL in SQS rather
    /// than on the client's disk.
    pub fn new(env: &CloudEnv, config: ProtocolConfig, wal_url: &str) -> CommitDaemon {
        // A daemon can run on a machine that never constructed a `P3`
        // (the WAL-in-the-cloud recovery story), so it provisions the
        // index domain itself. Idempotent, unmetered administrative call.
        if config.index {
            env.sdb()
                .create_domain(&crate::index::index_domain(&config.layout.domain));
        }
        CommitDaemon {
            env: env.clone(),
            config,
            wal_url: wal_url.to_string(),
            buf: Mutex::new(BTreeMap::new()),
            committed: Mutex::new(BTreeSet::new()),
            committed_count: AtomicU64::new(0),
            listener: Mutex::new(None),
        }
    }

    /// Installs a callback fired on every committed transaction.
    pub fn set_commit_listener(&self, listener: CommitListener) {
        *self.listener.lock() = Some(listener);
    }

    /// Transactions committed over this daemon's lifetime.
    pub fn committed_transactions(&self) -> u64 {
        self.committed_count.load(Ordering::Relaxed)
    }

    /// Receives one round of WAL messages and commits any transactions
    /// that became complete.
    ///
    /// # Errors
    ///
    /// Propagates cloud errors that survive retries. Incomplete
    /// transactions are never an error — they are ignored until their
    /// messages expire (crashed clients, §4.3.3).
    pub fn poll_once(&self) -> Result<PollOutcome> {
        self.config.step("p3:commit:poll")?;
        let sqs = self.env.sqs().with_actor(Actor::CommitDaemon);
        let msgs = retry(self.env.sim(), self.config.retries, || {
            sqs.receive(&self.wal_url, 10)
        })?;
        let mut outcome = PollOutcome {
            messages: msgs.len(),
            ..PollOutcome::default()
        };
        let mut ready = Vec::new();
        {
            let mut buf = self.buf.lock();
            for m in msgs {
                let body = String::from_utf8_lossy(&m.body).to_string();
                let Some((txn, seq, total, rest)) = parse_header(&body) else {
                    // Garbage message: drop it.
                    let _ = sqs.delete(&self.wal_url, &m.receipt);
                    continue;
                };
                if self.committed.lock().contains(&txn) {
                    // Late redelivery of an already-committed transaction.
                    let _ = sqs.delete(&self.wal_url, &m.receipt);
                    continue;
                }
                let entry = buf.entry(txn).or_insert_with(|| TxnBuf {
                    total: None,
                    parts: BTreeMap::new(),
                    receipts: Vec::new(),
                });
                entry.total = Some(total);
                entry.parts.insert(seq, rest);
                entry.receipts.push(m.receipt);
                if entry.parts.len() == total {
                    ready.push(txn);
                }
            }
        }
        for txn in ready {
            let Some(entry) = self.buf.lock().remove(&txn) else {
                continue;
            };
            match self.commit_txn(txn, entry) {
                Ok(()) => outcome.committed += 1,
                // A stalled transaction must not block the rest of the
                // queue: skip it and let redelivery/retention handle it.
                Err(ProtocolError::CommitStalled(_)) => outcome.stalled += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(outcome)
    }

    /// Commits one fully-assembled transaction.
    fn commit_txn(&self, txn: Uuid, entry: TxnBuf) -> Result<()> {
        let sim = self.env.sim();
        let s3 = self.env.s3().with_actor(Actor::CommitDaemon);
        let sdb = self.env.sdb().with_actor(Actor::CommitDaemon);
        let sqs = self.env.sqs().with_actor(Actor::CommitDaemon);
        let layout = &self.config.layout;

        // Reassemble in sequence order and parse.
        let mut files: Vec<(String, String, PNodeId)> = Vec::new();
        let mut record_text = String::new();
        for body in entry.parts.values() {
            for line in body.lines() {
                if let Some(rest) = line.strip_prefix("OBJ\t") {
                    let mut it = rest.split('\t');
                    let (Some(temp), Some(final_key), Some(id)) = (it.next(), it.next(), it.next())
                    else {
                        continue;
                    };
                    if let Ok(id) = id.parse::<PNodeId>() {
                        files.push((temp.to_string(), final_key.to_string(), id));
                    }
                } else {
                    record_text.push_str(line);
                    record_text.push('\n');
                }
            }
        }
        let records = wire::decode(record_text.as_bytes())?;

        // 1. COPY temp -> permanent, stamping uuid+version metadata. Data
        //    commits strictly before provenance: a transaction whose temp
        //    object never arrived (the client died after logging the WAL
        //    but before its parallel temp PUT landed) stalls HERE, before
        //    any provenance is written — so a dead client can never leave
        //    provenance describing data that does not exist (§3's "old
        //    data based on new provenance" hazard). The short window where
        //    data is visible without provenance is ordinary eventual
        //    coupling and closes when step 2 lands (or on recommit, since
        //    the WAL messages are only acknowledged at the very end). A
        //    daemon that dies in that window AND whose WAL then expires
        //    unrecovered leaves the data permanently ProvenanceMissing —
        //    the *detectable* side of the tradeoff; the reverse order
        //    risked the misleading side, permanent phantom provenance.
        for (temp, final_key, id) in &files {
            self.config.step(&format!("p3:commit:copy:{final_key}"))?;
            let mut committed = false;
            for _ in 0..self.config.retries.max(1) + 8 {
                match retry(sim, self.config.retries, || {
                    s3.copy(
                        &layout.data_bucket,
                        temp,
                        &layout.data_bucket,
                        final_key,
                        MetadataDirective::Replace(object_metadata(*id)),
                    )
                }) {
                    Ok(()) => {
                        committed = true;
                        break;
                    }
                    Err(CloudError::NoSuchKey { .. }) => {
                        // Either the temp PUT is not yet visible, or another
                        // daemon already committed and deleted it.
                        if let Ok(head) = s3.head(&layout.data_bucket, final_key) {
                            if parse_object_metadata(&head.meta) == Some(*id) {
                                committed = true;
                                break;
                            }
                        }
                        sim.sleep(Duration::from_secs(1));
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if !committed {
                return Err(ProtocolError::CommitStalled(format!(
                    "temp object {temp} for txn {txn} never became copyable"
                )));
            }
        }

        // 2 + 3. Spill oversized values, then BatchPutAttributes.
        let index_items = if self.config.index {
            crate::index::index_updates(&records)
        } else {
            Vec::new()
        };
        let mut by_subject: BTreeMap<PNodeId, Vec<ProvenanceRecord>> = BTreeMap::new();
        for r in records {
            by_subject.entry(r.subject).or_default().push(r);
        }
        let items: Vec<PutItem> = by_subject
            .iter()
            .map(|(id, recs)| records_to_item(sim, &s3, layout, self.config.retries, *id, recs))
            .collect::<Result<Vec<_>>>()?;
        let batch = self.config.db_batch.clamp(1, BATCH_LIMIT);
        for chunk in items.chunks(batch) {
            self.config.step("p3:commit:db")?;
            retry(sim, self.config.retries, || {
                sdb.batch_put_attributes(&layout.domain, chunk.to_vec())
            })?;
        }

        // 3b. Ancestry index, in the same commit step as the base items
        //     (strictly after them — the index must never describe
        //     provenance that is not stored). A crash here leaves the WAL
        //     unacknowledged; the recommit rewrites base and index, both
        //     idempotent, so recovery converges to a consistent index.
        if !index_items.is_empty() {
            let idx_domain = crate::index::index_domain(&layout.domain);
            for chunk in index_items.chunks(batch) {
                self.config.step("p3:commit:index")?;
                retry(sim, self.config.retries, || {
                    sdb.batch_put_attributes(&idx_domain, chunk.to_vec())
                })?;
            }
        }

        // 4. Delete temp objects and WAL messages.
        for (temp, _, _) in &files {
            self.config.step(&format!("p3:commit:gc:{temp}"))?;
            retry(sim, self.config.retries, || {
                s3.delete(&layout.data_bucket, temp)
            })?;
        }
        self.config.step("p3:commit:ack")?;
        for receipt in &entry.receipts {
            let _ = sqs.delete(&self.wal_url, receipt);
        }
        self.committed.lock().insert(txn);
        self.committed_count.fetch_add(1, Ordering::Relaxed);
        if let Some(l) = self.listener.lock().clone() {
            l(txn);
        }
        Ok(())
    }

    /// Polls until a round yields no messages. Useful for deterministic
    /// tests and for benchmarks that want the daemon cost measured.
    pub fn run_until_idle(&self) -> Result<u64> {
        let mut committed = 0;
        loop {
            let o = self.poll_once()?;
            committed += o.committed as u64;
            if o.messages == 0 {
                return Ok(committed);
            }
        }
    }

    /// Runs the daemon on a background simulated thread until stopped.
    pub fn spawn(self: Arc<Self>, poll_interval: Duration) -> DaemonHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let sim = self.env.sim().clone();
        let handle = sim.clone().spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match self.poll_once() {
                    Ok(o) if o.messages == 0 => sim.sleep(poll_interval),
                    Ok(_) => {}
                    Err(_) => sim.sleep(poll_interval),
                }
            }
        });
        DaemonHandle { stop, handle }
    }
}

fn parse_header(body: &str) -> Option<(Uuid, usize, usize, String)> {
    let (header, rest) = body.split_once('\n')?;
    let mut it = header.split('\t');
    if it.next()? != "TXN" {
        return None;
    }
    let txn: Uuid = it.next()?.parse().ok()?;
    let seq: usize = it.next()?.parse().ok()?;
    let total: usize = it.next()?.parse().ok()?;
    Some((txn, seq, total, rest.to_string()))
}

/// Handle to a running background daemon.
#[derive(Debug)]
pub struct DaemonHandle {
    stop: Arc<AtomicBool>,
    handle: SimHandle<()>,
}

impl DaemonHandle {
    /// Signals the daemon and waits (in virtual time) for it to exit.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join();
    }
}

/// The cleaner daemon: removes temporary objects older than the retention
/// window — the garbage left by transactions whose client crashed before
/// logging every packet (§4.3.3: "We use a cleaner daemon to remove
/// temporary objects that have not been accessed for 4 days").
pub struct CleanerDaemon {
    env: CloudEnv,
    config: ProtocolConfig,
    max_age: Duration,
}

impl std::fmt::Debug for CleanerDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanerDaemon")
            .field("max_age", &self.max_age)
            .finish()
    }
}

impl CleanerDaemon {
    /// Creates a cleaner with the paper's 4-day window.
    pub fn new(env: &CloudEnv, config: ProtocolConfig) -> CleanerDaemon {
        CleanerDaemon {
            env: env.clone(),
            config,
            max_age: cloudprov_cloud::RETENTION,
        }
    }

    /// Overrides the reclamation age (tests).
    pub fn with_max_age(mut self, max_age: Duration) -> CleanerDaemon {
        self.max_age = max_age;
        self
    }

    /// One sweep: lists the temp prefix and deletes expired objects.
    /// Returns how many were reclaimed.
    pub fn clean_once(&self) -> Result<usize> {
        let s3 = self.env.s3().with_actor(Actor::CleanerDaemon);
        let layout = &self.config.layout;
        let keys = retry(self.env.sim(), self.config.retries, || {
            s3.list_all(&layout.data_bucket, &layout.temp_prefix)
        })?;
        let now = self.env.sim().now();
        let mut reclaimed = 0;
        for k in keys {
            if now.saturating_duration_since(k.last_modified) > self.max_age {
                self.config.step(&format!("p3:clean:{}", k.key))?;
                retry(self.env.sim(), self.config.retries, || {
                    s3.delete(&layout.data_bucket, &k.key)
                })?;
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::{AwsProfile, Blob};
    use cloudprov_pass::{Attr, FlushNode, NodeKind};
    use cloudprov_sim::Sim;

    use crate::protocol::FlushObject;

    fn setup() -> (Sim, CloudEnv, P3) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, ProtocolConfig::default(), "wal-client1");
        (sim, env, p3)
    }

    fn file_obj(uuid: u128, version: u32, key: &str, data: &str) -> FlushObject {
        let id = PNodeId {
            uuid: Uuid(uuid),
            version,
        };
        let blob = Blob::from(data);
        FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some(key.to_string()),
                records: vec![
                    ProvenanceRecord::new(id, Attr::Type, "file"),
                    ProvenanceRecord::new(id, Attr::Name, key),
                    ProvenanceRecord::new(
                        id,
                        Attr::DataHash,
                        format!("{:016x}", blob.content_fingerprint()),
                    ),
                ],
                data_hash: Some(blob.content_fingerprint()),
            },
            key,
            blob,
        )
    }

    #[test]
    fn log_phase_leaves_data_in_temp_until_commit() {
        let (_sim, env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(1, 1, "out", "payload")],
        })
        .unwrap();
        // Before the daemon runs: temp object exists, final does not.
        assert!(env.s3().peek_count("data", "tmp/") > 0);
        assert!(env.s3().peek_committed("data", "out").is_none());
        assert!(env.sqs().peek_depth(p3.wal_url()) > 0);

        let daemon = p3.commit_daemon();
        let committed = daemon.run_until_idle().unwrap();
        assert_eq!(committed, 1);
        // After commit: final object exists with metadata, temp gone, WAL empty.
        let final_obj = env.s3().peek_committed("data", "out").unwrap();
        assert_eq!(final_obj.blob, Blob::from("payload"));
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0);
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
        // And provenance is in SimpleDB.
        assert!(env
            .sdb()
            .peek_item(
                "provenance",
                &PNodeId {
                    uuid: Uuid(1),
                    version: 1
                }
                .to_string()
            )
            .is_some());
    }

    #[test]
    fn read_after_commit_is_coupled() {
        let (_sim, _env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(2, 1, "out", "data!")],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        let r = p3.read("out").unwrap();
        assert_eq!(r.coupling, CouplingCheck::Coupled);
        assert_eq!(r.data, Blob::from("data!"));
    }

    #[test]
    fn incomplete_transaction_is_ignored() {
        // Client crashes after sending only some WAL packets: the daemon
        // must never commit the partial transaction (§4.3.3).
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        // Many records so the WAL needs >1 message; crash on message 1.
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| step != "p3:wal:1")),
            ..ProtocolConfig::default()
        };
        let p3 = P3::new(&env, cfg, "wal");
        let id = PNodeId::initial(Uuid(3));
        let records: Vec<_> = (0..500)
            .map(|i| ProvenanceRecord::new(id, Attr::Custom(format!("a{i}")), "v".repeat(40)))
            .collect();
        let obj = FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some("big".into()),
                records,
                data_hash: Some(1),
            },
            "big",
            Blob::from("x"),
        );
        let err = p3.flush(FlushBatch { objects: vec![obj] }).unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));

        let daemon = p3.commit_daemon();
        daemon.run_until_idle().unwrap();
        assert_eq!(daemon.committed_transactions(), 0);
        assert!(env.s3().peek_committed("data", "big").is_none());
        assert_eq!(env.sdb().peek_item_count("provenance"), 0);
    }

    #[test]
    fn another_machine_can_commit_after_client_logged_everything() {
        // The WAL-in-the-cloud argument: client finishes the log phase and
        // dies; a daemon on a DIFFERENT machine commits the transaction.
        let (_sim, env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(4, 1, "out", "survives")],
        })
        .unwrap();
        drop(p3); // client is gone
        let other_machine = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-client1");
        let committed = other_machine.run_until_idle().unwrap();
        assert_eq!(committed, 1);
        assert_eq!(
            env.s3().peek_committed("data", "out").unwrap().blob,
            Blob::from("survives")
        );
    }

    #[test]
    fn multi_message_transactions_reassemble() {
        let (_sim, env, p3) = setup();
        let id = PNodeId::initial(Uuid(5));
        // 240 records of ~140 bytes: several 8 KB messages, but within
        // SimpleDB's 256-attributes-per-item limit.
        let records: Vec<_> = (0..240)
            .map(|i| ProvenanceRecord::new(id, Attr::Custom(format!("k{i}")), "v".repeat(100)))
            .collect();
        let n_records = records.len();
        let obj = FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some("big".into()),
                records,
                data_hash: Some(2),
            },
            "big",
            Blob::from("content"),
        );
        p3.flush(FlushBatch { objects: vec![obj] }).unwrap();
        assert!(
            env.sqs().peek_depth(p3.wal_url()) > 3,
            "expected several 8KB chunks"
        );
        p3.commit_daemon().run_until_idle().unwrap();
        let item = env.sdb().peek_item("provenance", &id.to_string()).unwrap();
        assert_eq!(item.len(), n_records);
    }

    #[test]
    fn ancestors_ride_in_the_same_transaction() {
        // "We include all not-yet-written ancestors of an object in the
        // object's transaction" — so causal ordering holds even with
        // parallel sends.
        let (_sim, env, p3) = setup();
        let proc_id = PNodeId::initial(Uuid(6));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(7, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        // Both the process and the file item exist; no dangling input.
        assert!(env
            .sdb()
            .peek_item("provenance", &proc_id.to_string())
            .is_some());
        let file_item = env
            .sdb()
            .peek_item("provenance", &format!("{}_1", Uuid(7)))
            .unwrap();
        assert!(file_item
            .iter()
            .any(|(k, v)| k == "input" && *v == proc_id.to_string()));
    }

    #[test]
    fn duplicate_deliveries_commit_once() {
        let (_sim, env, p3) = setup();
        env.faults().set(cloudprov_cloud::FaultPlan {
            sqs_duplicate_probability: 0.5,
            ..cloudprov_cloud::FaultPlan::none()
        });
        p3.flush(FlushBatch {
            objects: vec![file_obj(8, 1, "out", "once")],
        })
        .unwrap();
        let daemon = p3.commit_daemon();
        // Poll repeatedly; duplicates must not double-commit.
        for _ in 0..20 {
            daemon.poll_once().unwrap();
        }
        env.faults().clear();
        daemon.run_until_idle().unwrap();
        assert_eq!(daemon.committed_transactions(), 1);
        assert_eq!(
            env.s3().peek_committed("data", "out").unwrap().blob,
            Blob::from("once")
        );
    }

    #[test]
    fn commit_maintains_the_ancestry_index() {
        let (_sim, env, p3) = setup();
        let proc_id = PNodeId::initial(Uuid(30));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(31, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        let audit = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(audit.consistent(), "{audit:?}");
        assert!(audit.entries >= 2, "rev edge + program seed expected");
    }

    #[test]
    fn crash_between_base_and_index_write_heals_on_recommit() {
        // The p3:commit:index crash point: base records land, the index
        // write dies, the WAL stays unacknowledged. A fresh daemon's
        // recommit must leave base and index consistent (both writes are
        // idempotent).
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| step != "p3:commit:index")),
            ..ProtocolConfig::default()
        };
        let p3 = P3::new(&env, cfg, "wal-idx");
        let proc_id = PNodeId::initial(Uuid(40));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(41, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();
        let dying = p3.commit_daemon();
        let err = dying.run_until_idle().unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));
        // Base records committed, index did not: temporarily divergent.
        assert!(env.sdb().peek_item_count("provenance") > 0);
        let mid = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(!mid.consistent(), "crash must leave the gap this models");
        // WAL unacknowledged: a recovery daemon redelivers and recommits.
        sim.sleep(cloudprov_cloud::DEFAULT_VISIBILITY_TIMEOUT + Duration::from_secs(1));
        let recovery = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-idx");
        recovery.run_until_idle().unwrap();
        let audit = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(audit.consistent(), "{audit:?}");
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
    }

    #[test]
    fn disabling_the_index_skips_index_writes() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let cfg = ProtocolConfig {
            index: false,
            ..ProtocolConfig::default()
        };
        let p3 = P3::new(&env, cfg, "wal-noidx");
        assert!(matches!(
            p3.provenance_store(),
            Some(ProvenanceStore::Database {
                index_domain: None,
                ..
            })
        ));
        p3.flush(FlushBatch {
            objects: vec![file_obj(50, 1, "out", "x")],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        assert_eq!(
            env.sdb()
                .peek_item_count(&crate::index::index_domain("provenance")),
            0
        );
    }

    #[test]
    fn cleaner_reaps_only_expired_orphans() {
        let (sim, env, p3) = setup();
        // Orphan a temp object by crashing before any WAL send.
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| !step.starts_with("p3:wal:"))),
            ..ProtocolConfig::default()
        };
        let crasher = P3::new(&env, cfg, "wal-crasher");
        let _ = crasher.flush(FlushBatch {
            objects: vec![file_obj(9, 1, "orphaned", "lost")],
        });
        assert_eq!(env.s3().peek_count("data", "tmp/"), 1);

        let cleaner = p3.cleaner_daemon();
        // Too young: nothing reclaimed.
        assert_eq!(cleaner.clean_once().unwrap(), 0);
        // After 4 days it goes.
        sim.sleep(Duration::from_secs(4 * 24 * 3600 + 60));
        assert_eq!(cleaner.clean_once().unwrap(), 1);
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0);
    }

    #[test]
    fn background_daemon_commits_while_client_works() {
        let (sim, env, p3) = setup();
        let daemon = Arc::new(p3.commit_daemon());
        let handle = daemon.clone().spawn(Duration::from_secs(5));
        for i in 0..5u128 {
            p3.flush(FlushBatch {
                objects: vec![file_obj(20 + i, 1, &format!("f{i}"), "d")],
            })
            .unwrap();
        }
        // Give the daemon virtual time to drain.
        sim.sleep(Duration::from_secs(120));
        handle.stop();
        assert_eq!(daemon.committed_transactions(), 5);
        for i in 0..5 {
            assert!(env.s3().peek_committed("data", &format!("f{i}")).is_some());
        }
    }

    #[test]
    fn wal_messages_respect_sqs_limit() {
        let id = PNodeId::initial(Uuid(11));
        let records: Vec<_> = (0..2000)
            .map(|i| ProvenanceRecord::new(id, Attr::Custom(format!("a{i}")), "z".repeat(50)))
            .collect();
        let msgs = P3::build_messages(Uuid(1), &[], &records, MESSAGE_LIMIT);
        assert!(msgs.len() > 10);
        for m in &msgs {
            assert!(m.len() <= MESSAGE_LIMIT, "message of {} bytes", m.len());
        }
    }

    #[test]
    fn empty_flush_sends_header_only_transaction() {
        let (_sim, _env, p3) = setup();
        p3.flush(FlushBatch::default()).unwrap();
        let daemon = p3.commit_daemon();
        assert_eq!(daemon.run_until_idle().unwrap(), 1);
    }
}
