//! Protocol P3: cloud store + cloud database + messaging service (§4.3.3).
//!
//! P3 is the paper's most robust protocol — the only one providing
//! (eventual) **provenance data-coupling**. The trick is a write-ahead log
//! kept *in the cloud*: an SQS queue. A crashed client's partially-logged
//! transaction is simply ignored; a completely-logged transaction can be
//! committed by *any* machine, so a crash between logging and committing
//! loses nothing (using a local log instead would).
//!
//! **Log phase** (client, on close/flush): store each file's data under a
//! temporary S3 name; chunk the provenance of the object *and all its
//! not-yet-written ancestors* into ≤8 KB WAL messages tagged with a
//! transaction id, sequence number and total; send them (parallel sends
//! are safe — ordering is reconstructed from sequence numbers, which is
//! how P3 keeps causal ordering without careful upload ordering).
//!
//! **Commit phase** (commit daemon, asynchronous): assemble complete
//! transactions and commit them as a **group**. One poll round drains the
//! WAL (bounded receive rounds), and every transaction that became
//! complete commits together (`commit_group`): the per-file `COPY`s of
//! all group members fan out over `commit_parallelism` connections
//! (stamping the new version — S3 has no rename, and §4.3.3 notes copies
//! cost $0.01 per thousand); >1 KB values spill to S3; the base and
//! index `PutItem`s of **all** members pack into full
//! `BatchPutAttributes` chunks ([`pack_group_writes`]) written over
//! `db_concurrency` connections; the temp-object deletes fan out; and
//! the WAL receipts acknowledge through batched `DeleteMessageBatch`
//! calls. The §3 ordering survives grouping — see the phase ordering in
//! `commit_group`: every member's data copies land before any member's
//! provenance items, index chunks write strictly after all base chunks,
//! and no receipt is acknowledged until every chunk carrying one of its
//! transaction's items is durable, so a daemon crash mid-group leaves
//! each member either fully recommittable (unacknowledged WAL) or
//! untouched. A transaction whose temp object was lost with a dead
//! client stalls in the copy phase, before any of *its* provenance
//! lands; stalled transactions are evicted from the group without
//! blocking their peers, redeliver, and ultimately expire with SQS
//! retention.
//!
//! **Garbage collection**: SQS deletes messages after 4 days on its own;
//! a cleaner daemon reaps temporary objects older than 4 days that belong
//! to transactions that never completed.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cloudprov_cloud::{
    Actor, CloudEnv, CloudError, Database, MetadataDirective, PutItem, TenantId, BATCH_ENTRY_LIMIT,
    BATCH_LIMIT, MESSAGE_LIMIT, RECEIVE_MAX,
};
use cloudprov_pass::wire;
use cloudprov_pass::{PNodeId, ProvenanceRecord, Uuid};
use cloudprov_sim::{SimHandle, SimTime};
use cloudprov_trace::{SpanContext, Tracer, SCOPE_CLIENT, SCOPE_COMMIT_DAEMON};

use crate::cas::{self, CasFlushItem};
use crate::error::{ProtocolError, Result};
use crate::feed::{extract_touches, CommitEventSink, FeedWriter, StagedTouches};
use crate::layout::{object_metadata, parse_object_metadata};
use crate::protocol::{
    detect_coupling, item_to_records, records_to_item, retry, CouplingCheck, FlushBatch,
    ProtocolConfig, ProvenanceStore, ReadResult, StorageProtocol,
};

/// Room reserved in each WAL message for the `TXN` header line.
const HEADER_ROOM: usize = 80;

/// Receive rounds one commit-daemon poll performs before committing what
/// assembled — the group-commit window. Bounded (rather than
/// drain-until-empty) so duplicate-delivery faults, which leave a
/// received message visible, cannot spin a poll forever; four rounds of
/// ten messages cover the deepest shard backlogs the fleet benchmark
/// produces while keeping one group's commit comfortably inside a
/// commit-lease TTL.
const GROUP_RECEIVE_ROUNDS: usize = 4;

/// Cap on the per-client (txn, logged-at) samples kept for commit-
/// latency measurement.
const TXN_LOG_CAP: usize = 1 << 16;

/// Protocol P3: S3 + SimpleDB + SQS write-ahead log.
#[derive(Clone)]
pub struct P3 {
    env: CloudEnv,
    config: ProtocolConfig,
    wal_url: String,
    rng: Arc<Mutex<SmallRng>>,
    /// (transaction id, WAL-durable instant) per completed log phase —
    /// the client-side half of the commit-latency measurement (capped
    /// at [`TXN_LOG_CAP`]). Shared across clones.
    logged: Arc<Mutex<Vec<(Uuid, SimTime)>>>,
}

impl std::fmt::Debug for P3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P3").field("wal", &self.wal_url).finish()
    }
}

impl P3 {
    /// Creates the protocol; `queue_name` names this client's WAL queue
    /// (each client has its own, §4.3.3).
    pub fn new(env: &CloudEnv, config: ProtocolConfig, queue_name: &str) -> P3 {
        Self::with_identity(env, config, queue_name, queue_name)
    }

    /// Creates the protocol with an explicit client identity seeding the
    /// transaction-id generator. In the paper each client owns its queue,
    /// so the queue name doubles as the identity; a *sharded* fleet has
    /// many clients logging to one shard queue, and their id streams must
    /// not collide — interleaved WAL messages from two clients under one
    /// transaction id would reassemble into garbage.
    pub fn with_identity(
        env: &CloudEnv,
        config: ProtocolConfig,
        queue_name: &str,
        identity: &str,
    ) -> P3 {
        env.sdb().create_domain(&config.layout.domain);
        if config.index {
            env.sdb()
                .create_domain(&crate::index::index_domain(&config.layout.domain));
        }
        let wal_url = env.sqs().create_queue(queue_name);
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in identity.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0100_0000_01b3);
        }
        P3 {
            env: env.clone(),
            config,
            wal_url,
            rng: Arc::new(Mutex::new(SmallRng::seed_from_u64(seed))),
            logged: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Transactions this client has durably logged, with the virtual
    /// instant each log phase completed. Paired with a commit-side
    /// timestamp (see the fleet pool) this measures per-transaction
    /// commit latency: WAL-durable -> committed.
    pub fn logged_transactions(&self) -> Vec<(Uuid, SimTime)> {
        self.logged.lock().clone()
    }

    /// URL of this client's WAL queue.
    pub fn wal_url(&self) -> &str {
        &self.wal_url
    }

    /// Builds the commit daemon for this WAL (run it with
    /// [`CommitDaemon::spawn`] or drive it manually in tests).
    pub fn commit_daemon(&self) -> CommitDaemon {
        CommitDaemon::new(&self.env, self.config.clone(), &self.wal_url)
    }

    /// Builds the cleaner daemon reaping orphaned temp objects.
    pub fn cleaner_daemon(&self) -> CleanerDaemon {
        CleanerDaemon::new(&self.env, self.config.clone())
    }

    fn fresh_txn(&self) -> Uuid {
        Uuid(self.rng.lock().gen())
    }

    /// Serializes a batch into WAL message bodies.
    ///
    /// Lines are object lines (`OBJ\t<temp>\t<final>\t<node>` per file,
    /// `CAS\t<sha>\t<final>\t<node>\t<d|p>` per content-addressed
    /// reference, in batch order) or wire-encoded provenance records;
    /// they are packed greedily into bodies that, with the header, stay
    /// within the 8 KB SQS limit.
    fn build_messages(
        txn: Uuid,
        tenant: Option<TenantId>,
        ctx: Option<SpanContext>,
        obj_lines: &[String],
        records: &[ProvenanceRecord],
        message_limit: usize,
    ) -> Vec<String> {
        let limit = message_limit.clamp(HEADER_ROOM + 64, MESSAGE_LIMIT) - HEADER_ROOM;
        let mut lines: Vec<String> = obj_lines.to_vec();
        for r in records {
            lines.push(wire::encode_record(r));
        }
        let mut bodies: Vec<String> = Vec::new();
        let mut cur = String::new();
        for line in lines {
            assert!(
                line.len() <= limit,
                "WAL line of {} bytes exceeds message capacity",
                line.len()
            );
            if !cur.is_empty() && cur.len() + line.len() > limit {
                bodies.push(std::mem::take(&mut cur));
            }
            cur.push_str(&line);
        }
        if !cur.is_empty() || bodies.is_empty() {
            bodies.push(cur);
        }
        let total = bodies.len();
        // A tenant-attributed client stamps its tenant as an optional
        // header field so daemon-side change-feed events can carry the
        // originating tenant, and a tracing client appends its root
        // span context (`ctx:…`) the same way — the propagation seam
        // that connects the client's trace tree to the daemon's commit
        // phases. Both fields are optional and self-describing (numeric
        // vs `ctx:`-prefixed), so shorter headers parse unchanged.
        let extra = {
            let mut s = String::new();
            if let Some(t) = tenant {
                s.push('\t');
                s.push_str(&t.0.to_string());
            }
            if let Some(c) = ctx {
                s.push('\t');
                s.push_str(&c.encode());
            }
            s
        };
        bodies
            .into_iter()
            .enumerate()
            .map(|(seq, body)| format!("TXN\t{txn}\t{seq}\t{total}{extra}\n{body}"))
            .collect()
    }

    /// The **log phase** for a mixed batch of delta objects and
    /// content-addressed references ([`CasFlushItem`]) — the CAS-aware
    /// generalization `flush` delegates to with all-`Object` items.
    ///
    /// Delta objects upload payloads to temp keys and travel as `OBJ`
    /// lines; references travel as `CAS` lines carrying only a hash —
    /// their content was published to the shared store before this call
    /// (the flusher's [`CasStore::wait`](crate::CasStore::wait) barrier),
    /// so the WAL never references content that does not exist. Object
    /// lines are emitted in item order, preserving the closure's
    /// ancestors-first, newest-version-last discipline across both kinds
    /// for the daemon's last-for-key copy election.
    ///
    /// # Errors
    ///
    /// Propagates cloud errors after retries; [`ProtocolError::Crashed`]
    /// when the crash hook fires.
    pub fn flush_with_cas(&self, items: Vec<CasFlushItem>) -> Result<()> {
        let sim = self.env.sim().clone();
        let txn = self.fresh_txn();
        let layout = &self.config.layout;

        // Trace: open this transaction's lifecycle root (trace id = txn
        // id) and a `flush` child covering the log phase. The guard's
        // scope makes every metered client op inside the fan-out a leaf
        // span, and the root context rides the WAL header to the daemon.
        let tracer = self.env.tracer();
        let tenant_tag = self.env.tenant().map(|t| t.0);
        let root = tracer.open_txn(txn.0, tenant_tag);
        let flush_guard = root.and_then(|r| {
            tracer.phase(
                txn.0,
                r.span,
                "flush",
                tenant_tag,
                Some((SCOPE_CLIENT, tenant_tag)),
                sim.now(),
            )
        });

        // 1. Collect temp uploads and WAL object lines in item order.
        let mut uploads: Vec<(String, cloudprov_cloud::Blob)> = Vec::new();
        let mut obj_lines: Vec<String> = Vec::new();
        let mut records: Vec<ProvenanceRecord> = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match item {
                CasFlushItem::Object(o) => {
                    if let (Some(key), Some(data)) = (o.key.clone(), o.data.clone()) {
                        let temp = layout.temp_key(txn, i);
                        obj_lines.push(format!("OBJ\t{temp}\t{key}\t{}\n", o.node.id));
                        uploads.push((temp, data));
                    }
                    records.extend(o.node.records.iter().cloned());
                }
                CasFlushItem::Ref(r) => {
                    obj_lines.push(format!(
                        "CAS\t{}\t{}\t{}\t{}\n",
                        r.sha,
                        r.key.as_deref().unwrap_or("-"),
                        r.id,
                        if r.has_data { "d" } else { "p" },
                    ));
                }
            }
        }
        // 2. Build the WAL messages up front (temp keys are known before
        //    the temp PUTs complete), then run temp PUTs and WAL sends in
        //    ONE task pool: the paper's implementation sends packets in
        //    parallel — safe because ordering is reconstructed from
        //    sequence numbers and the commit daemon retries until temp
        //    objects become visible.
        let messages = Self::build_messages(
            txn,
            self.env.tenant(),
            root,
            &obj_lines,
            &records,
            self.config.wal_message_limit,
        );
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = Vec::new();
        for (temp, data) in &uploads {
            let (temp, data) = (temp.clone(), data.clone());
            let this = self.clone();
            tasks.push(Box::new(move || -> Result<()> {
                this.config.step(&format!("p3:temp:{temp}"))?;
                retry(this.env.sim(), this.config.retries, || {
                    this.env.s3().put(
                        &this.config.layout.data_bucket,
                        &temp,
                        data.clone(),
                        cloudprov_cloud::Metadata::new(),
                    )
                })?;
                Ok(())
            }));
        }
        // WAL messages ride in SendMessageBatch calls of up to ten
        // bodies: one queue round trip (and one billed request) per
        // batch instead of one per message. Safe for the same reason
        // parallel sends were — ordering is reconstructed from sequence
        // numbers — and per-entry verdicts keep failures precise. The
        // paper's 2009 tool predates SendMessageBatch; the benchmark
        // rigs reproducing its op counts turn `wal_batch_send` off and
        // get the original one-send-per-message path.
        if self.config.wal_batch_send {
            for (bi, chunk) in messages.chunks(BATCH_ENTRY_LIMIT).enumerate() {
                let bodies: Vec<Bytes> = chunk.iter().map(|b| Bytes::from(b.clone())).collect();
                let this = self.clone();
                tasks.push(Box::new(move || -> Result<()> {
                    this.config.step(&format!("p3:wal:{bi}"))?;
                    let results = retry(this.env.sim(), this.config.retries, || {
                        this.env.sqs().send_batch(&this.wal_url, bodies.clone())
                    })?;
                    for r in results {
                        r?;
                    }
                    Ok(())
                }));
            }
        } else {
            for (seq, body) in messages.into_iter().enumerate() {
                let this = self.clone();
                tasks.push(Box::new(move || -> Result<()> {
                    this.config.step(&format!("p3:wal:{seq}"))?;
                    retry(this.env.sim(), this.config.retries, || {
                        this.env
                            .sqs()
                            .send(&this.wal_url, Bytes::from(body.clone()))
                    })?;
                    Ok(())
                }));
            }
        }
        sim.run_parallel(self.config.upload_concurrency, tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        let now = sim.now();
        // WAL-durable: the root span's start instant. (On the error
        // path above the guard's drop still emitted the flush span, so
        // even a crashed log phase leaves a connected tree.)
        tracer.mark_logged(txn.0, now);
        if let Some(g) = flush_guard {
            g.finish(now);
        }
        let mut logged = self.logged.lock();
        if logged.len() < TXN_LOG_CAP {
            logged.push((txn, now));
        }
        Ok(())
    }
}

impl StorageProtocol for P3 {
    fn name(&self) -> &'static str {
        "P3"
    }

    /// The **log phase**. Returns once everything is durably in the WAL —
    /// the commit daemon finishes asynchronously, which is why P3's
    /// client-side elapsed times exclude it (§5).
    fn flush(&self, batch: FlushBatch) -> Result<()> {
        self.flush_with_cas(
            batch
                .objects
                .into_iter()
                .map(CasFlushItem::Object)
                .collect(),
        )
    }

    fn read(&self, key: &str) -> Result<ReadResult> {
        let obj = retry(self.env.sim(), self.config.retries, || {
            self.env.s3().get(&self.config.layout.data_bucket, key)
        })?;
        let id = parse_object_metadata(&obj.meta);
        let coupling = match id {
            None => CouplingCheck::Unlinked,
            Some(id) => {
                let attrs = retry(self.env.sim(), self.config.retries, || {
                    self.env
                        .sdb()
                        .get_attributes(&self.config.layout.domain, &id.to_string())
                })?;
                let records = item_to_records(&id.to_string(), &attrs);
                detect_coupling(&obj.blob, Some(id), &records)
            }
        };
        Ok(ReadResult {
            data: obj.blob,
            id,
            coupling,
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        retry(self.env.sim(), self.config.retries, || {
            self.env.s3().delete(&self.config.layout.data_bucket, key)
        })?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        match retry(self.env.sim(), self.config.retries, || {
            self.env.s3().head(&self.config.layout.data_bucket, key)
        }) {
            Ok(h) => Ok(Some(h.len)),
            Err(CloudError::NoSuchKey { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn provenance_store(&self) -> Option<ProvenanceStore> {
        Some(ProvenanceStore::Database {
            domain: self.config.layout.domain.clone(),
            spill_bucket: self.config.layout.prov_bucket.clone(),
            index_domain: self
                .config
                .index
                .then(|| crate::index::index_domain(&self.config.layout.domain)),
        })
    }
}

struct TxnBuf {
    total: Option<usize>,
    tenant: Option<TenantId>,
    ctx: Option<SpanContext>,
    parts: BTreeMap<usize, String>,
    receipts: Vec<String>,
}

/// One reassembled, parsed member of a commit group.
struct ParsedTxn {
    txn: Uuid,
    tenant: Option<TenantId>,
    /// Root span context carried in the WAL header, when the logging
    /// client was tracing.
    ctx: Option<SpanContext>,
    files: Vec<(String, String, PNodeId)>,
    records: Vec<ProvenanceRecord>,
    /// CAS hashes whose registry records this member still needs
    /// (referenced by a `CAS` line and not in this daemon's materialized
    /// cache). Fetched in phase 0; a hash that never becomes visible
    /// evicts the member like a stalled copy.
    cas_shas: Vec<String>,
    receipts: Vec<String>,
}

/// What one group commit achieved.
#[derive(Clone, Copy, Debug, Default)]
struct GroupOutcome {
    committed: usize,
    stalled: usize,
}

/// COPYs one temp object to its permanent name, stamping uuid+version
/// metadata, with the stall-detection retry loop: a temp that never
/// becomes copyable (and whose final key does not already carry this
/// version — another daemon may have committed it) makes the owning
/// transaction [`ProtocolError::CommitStalled`]. Free function so the
/// group commit can fan copies out over simulated connections.
fn copy_into_place(
    env: &CloudEnv,
    config: &ProtocolConfig,
    txn: Uuid,
    temp: &str,
    final_key: &str,
    id: PNodeId,
) -> Result<()> {
    config.step(&format!("p3:commit:copy:{final_key}"))?;
    let sim = env.sim();
    let s3 = env.s3().with_actor(Actor::CommitDaemon);
    let layout = &config.layout;
    for _ in 0..config.retries.max(1) + 8 {
        match retry(sim, config.retries, || {
            s3.copy(
                &layout.data_bucket,
                temp,
                &layout.data_bucket,
                final_key,
                MetadataDirective::Replace(object_metadata(id)),
            )
        }) {
            Ok(()) => return Ok(()),
            Err(CloudError::NoSuchKey { .. }) => {
                // Either the temp PUT is not yet visible, or another
                // daemon already committed and deleted it.
                if let Ok(head) = s3.head(&layout.data_bucket, final_key) {
                    if parse_object_metadata(&head.meta) == Some(id) {
                        return Ok(());
                    }
                }
                sim.sleep(Duration::from_secs(1));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(ProtocolError::CommitStalled(format!(
        "temp object {temp} for txn {txn} never became copyable"
    )))
}

/// Fetches one CAS hash's records from the shared registry with the same
/// bounded visibility-retry discipline as [`copy_into_place`]: the
/// registry is eventually consistent, and the publish happened strictly
/// before the WAL reference, so a short wait closes the common race.
/// `Ok(None)` — never visible within the budget, or a malformed item —
/// evicts the referencing member (redelivery retries the whole group
/// member); hard cloud errors propagate.
fn fetch_cas_records(
    env: &CloudEnv,
    config: &ProtocolConfig,
    sha: &str,
) -> Result<Option<Vec<ProvenanceRecord>>> {
    let sim = env.sim();
    let sdb = env.sdb().with_actor(Actor::CommitDaemon);
    let registry = cas::cas_domain(&config.layout.domain);
    for _ in 0..config.retries.max(1) + 8 {
        let attrs = retry(sim, config.retries, || sdb.get_attributes(&registry, sha))?;
        if !attrs.is_empty() {
            return Ok(cas::decode_registry_item(&attrs).map(|(_, _, _, records)| records));
        }
        sim.sleep(Duration::from_secs(1));
    }
    Ok(None)
}

/// The two write phases of one group commit, in execution order: every
/// `base` chunk lands (with a barrier) before any `index` chunk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupWritePlan {
    /// Chunks of base provenance items, each within the service's batch
    /// limit.
    pub base_chunks: Vec<Vec<PutItem>>,
    /// Chunks of ancestry-index items, written strictly after every base
    /// chunk.
    pub index_chunks: Vec<Vec<PutItem>>,
}

impl GroupWritePlan {
    /// Total items across both phases.
    pub fn items(&self) -> usize {
        self.base_chunks.iter().map(Vec::len).sum::<usize>()
            + self.index_chunks.iter().map(Vec::len).sum::<usize>()
    }
}

/// Packs a commit group's writes into `BatchPutAttributes` chunks.
///
/// Pure function — the packing invariants the property tests pin down:
///
/// * no chunk exceeds `batch_limit` (the service's 25-item cap);
/// * item order is preserved within each phase, and **every** base chunk
///   precedes **every** index chunk in the plan, so no transaction's
///   index items can ever write ahead of its base items no matter how
///   transactions were mixed;
/// * no item is dropped or duplicated.
///
/// Under load the chunks are full (the minimum count the limit allows);
/// a light group instead splits evenly across up to `parallelism`
/// non-empty chunks, so the per-item-dominated database time shrinks by
/// the connection fan-out rather than serializing behind one call.
pub fn pack_group_writes(
    base: Vec<PutItem>,
    index: Vec<PutItem>,
    batch_limit: usize,
    parallelism: usize,
) -> GroupWritePlan {
    GroupWritePlan {
        base_chunks: pack_items(base, batch_limit, parallelism),
        index_chunks: pack_items(index, batch_limit, parallelism),
    }
}

fn pack_items(items: Vec<PutItem>, batch_limit: usize, parallelism: usize) -> Vec<Vec<PutItem>> {
    let limit = batch_limit.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunks = n.div_ceil(limit).max(parallelism.max(1).min(n));
    let per = n.div_ceil(chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<PutItem> = it.by_ref().take(per).collect();
        if chunk.is_empty() {
            break;
        }
        out.push(chunk);
    }
    out
}

/// Outcome of one commit-daemon poll.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollOutcome {
    /// WAL messages received this poll (all receive rounds).
    pub messages: usize,
    /// Transactions committed this poll (as one group).
    pub committed: usize,
    /// Transactions evicted from the group instead of committed: a
    /// referenced temp object never became copyable (e.g. the client
    /// died after logging the WAL but before its temp PUT landed), or
    /// the assembled record text failed to decode (a poisoned body).
    /// Never fatal — the evicted members' messages redeliver after the
    /// visibility timeout and ultimately expire with SQS retention,
    /// which is the paper's garbage-collection story for dead clients.
    pub stalled: usize,
    /// Messages this poll discarded through the batched delete path:
    /// garbage bodies and late redeliveries of already-committed
    /// transactions. Surfaced (rather than silently dropped) so
    /// operators can see redelivery churn; an entry that fails to delete
    /// is *not* counted and simply redelivers.
    pub dropped: usize,
}

/// Callback invoked (with the transaction id) each time a daemon commits
/// a transaction. The fleet's daemon pool uses it as a cross-daemon
/// double-commit detector.
pub type CommitListener = Arc<dyn Fn(Uuid) + Send + Sync>;

/// The asynchronous commit daemon (§4.3.3 commit phase).
pub struct CommitDaemon {
    env: CloudEnv,
    config: ProtocolConfig,
    wal_url: String,
    buf: Mutex<BTreeMap<Uuid, TxnBuf>>,
    committed: Mutex<BTreeSet<Uuid>>,
    /// When each transaction's first WAL message reached this daemon —
    /// the pickup instant. `committed_at - pickup` is service time; the
    /// client-side `pickup - logged_at` dwell is the component push
    /// delivery exists to eliminate, and the fleet bench gates it.
    first_seen: Mutex<BTreeMap<Uuid, SimTime>>,
    committed_count: AtomicU64,
    listener: Mutex<Option<CommitListener>>,
    /// CAS hashes whose registry records this daemon has already written
    /// through a committed group — their refetch is skipped (the records
    /// are durable in the provenance domain; SimpleDB deduplicates the
    /// identical re-put a cache-cold daemon performs). Data copies are
    /// NEVER skipped on cache grounds: a client may delete a final key
    /// and re-flush identical content, and the re-copy is what restores
    /// the object.
    materialized: Mutex<BTreeSet<String>>,
    /// Change-feed staging for this WAL stream; `Some` iff `config.feed`.
    feed: Option<FeedWriter>,
    /// Where published [`CommitEvent`]s go. Installing none is fine —
    /// events still stage and the watermark still advances, so a sink
    /// attached later (or on a takeover daemon) starts from a clean edge.
    sink: Mutex<Option<CommitEventSink>>,
}

impl std::fmt::Debug for CommitDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitDaemon")
            .field("wal", &self.wal_url)
            .field("committed", &self.committed_count.load(Ordering::Relaxed))
            .finish()
    }
}

impl CommitDaemon {
    /// Creates a daemon reading `wal_url`. Any machine can run one — that
    /// is the crash-tolerance argument for putting the WAL in SQS rather
    /// than on the client's disk.
    pub fn new(env: &CloudEnv, config: ProtocolConfig, wal_url: &str) -> CommitDaemon {
        // A daemon can run on a machine that never constructed a `P3`
        // (the WAL-in-the-cloud recovery story), so it provisions the
        // index domain itself. Idempotent, unmetered administrative call.
        if config.index {
            env.sdb()
                .create_domain(&crate::index::index_domain(&config.layout.domain));
        }
        // The feed stream is named by the WAL queue: one ordered event
        // stream per shard, surviving daemon identity changes.
        let stream = wal_url.rsplit('/').next().unwrap_or(wal_url).to_string();
        let feed = config
            .feed
            .then(|| FeedWriter::new(env, config.clone(), &stream));
        CommitDaemon {
            env: env.clone(),
            config,
            wal_url: wal_url.to_string(),
            buf: Mutex::new(BTreeMap::new()),
            committed: Mutex::new(BTreeSet::new()),
            materialized: Mutex::new(BTreeSet::new()),
            first_seen: Mutex::new(BTreeMap::new()),
            committed_count: AtomicU64::new(0),
            listener: Mutex::new(None),
            feed,
            sink: Mutex::new(None),
        }
    }

    /// Installs a callback fired on every committed transaction.
    pub fn set_commit_listener(&self, listener: CommitListener) {
        *self.listener.lock() = Some(listener);
    }

    /// Installs the change-feed sink receiving every published
    /// [`CommitEvent`]. No-op unless the config enables the feed.
    pub fn set_event_sink(&self, sink: CommitEventSink) {
        *self.sink.lock() = Some(sink);
    }

    /// Publishes any staged-but-unpublished feed events (this daemon's or
    /// a crashed predecessor's) to the installed sink. Called from every
    /// poll so a takeover daemon drains its predecessor's backlog even
    /// when no new traffic arrives. Returns how many events published.
    pub fn flush_feed(&self) -> Result<usize> {
        match &self.feed {
            Some(w) => w.flush(self.sink.lock().clone().as_ref()),
            None => Ok(0),
        }
    }

    /// Transactions committed over this daemon's lifetime.
    pub fn committed_transactions(&self) -> u64 {
        self.committed_count.load(Ordering::Relaxed)
    }

    /// When each transaction's first WAL message reached this daemon
    /// (assembly may still be in flight). Joined against client logged-at
    /// instants, this is the WAL-durable -> pickup dwell — the waiting
    /// component of commit latency, as opposed to the commit's own
    /// service time.
    pub fn pickup_times(&self) -> Vec<(Uuid, SimTime)> {
        self.first_seen
            .lock()
            .iter()
            .map(|(txn, at)| (*txn, *at))
            .collect()
    }

    /// One **group-commit round**: drains up to [`GROUP_RECEIVE_ROUNDS`]
    /// receives from the WAL, discards garbage and late redeliveries
    /// through the batched delete path, and commits every transaction
    /// that became complete as one group (`commit_group`).
    ///
    /// # Errors
    ///
    /// Propagates cloud errors that survive retries. Incomplete
    /// transactions are never an error — they are ignored until their
    /// messages expire (crashed clients, §4.3.3).
    pub fn poll_once(&self) -> Result<PollOutcome> {
        self.config.step("p3:commit:poll")?;
        let sqs = self.env.sqs().with_actor(Actor::CommitDaemon);
        let mut outcome = PollOutcome::default();
        let mut ready: Vec<Uuid> = Vec::new();
        let mut drops: Vec<String> = Vec::new();
        for _ in 0..GROUP_RECEIVE_ROUNDS {
            let msgs = retry(self.env.sim(), self.config.retries, || {
                sqs.receive(&self.wal_url, RECEIVE_MAX)
            })?;
            if msgs.is_empty() {
                break;
            }
            outcome.messages += msgs.len();
            let mut buf = self.buf.lock();
            for m in msgs {
                let body = String::from_utf8_lossy(&m.body).to_string();
                let Some((txn, seq, total, tenant, ctx, rest)) = parse_header(&body) else {
                    // Garbage message: queue it for the batched drop.
                    drops.push(m.receipt);
                    continue;
                };
                if self.committed.lock().contains(&txn) {
                    // Late redelivery of an already-committed transaction.
                    drops.push(m.receipt);
                    continue;
                }
                let entry = buf.entry(txn).or_insert_with(|| {
                    self.first_seen
                        .lock()
                        .entry(txn)
                        .or_insert_with(|| self.env.sim().now());
                    // Trace: pickup instant (first mark wins across
                    // daemons, matching the pool's earliest-wins merge).
                    self.env.tracer().mark_pickup(txn.0, self.env.sim().now());
                    TxnBuf {
                        total: None,
                        tenant: None,
                        ctx: None,
                        parts: BTreeMap::new(),
                        receipts: Vec::new(),
                    }
                });
                entry.total = Some(total);
                entry.tenant = entry.tenant.or(tenant);
                entry.ctx = entry.ctx.or(ctx);
                entry.parts.insert(seq, rest);
                entry.receipts.push(m.receipt);
                if entry.parts.len() == total && !ready.contains(&txn) {
                    ready.push(txn);
                }
            }
        }
        // Cleanup is metered and error-checked like any other daemon
        // traffic: whole-call failures (after retries) surface instead of
        // being discarded, per-entry failures just redeliver.
        for chunk in drops.chunks(BATCH_ENTRY_LIMIT) {
            let results = retry(self.env.sim(), self.config.retries, || {
                sqs.delete_batch(&self.wal_url, chunk)
            })?;
            outcome.dropped += results.iter().filter(|r| r.is_ok()).count();
        }
        let group: Vec<(Uuid, TxnBuf)> = {
            let mut buf = self.buf.lock();
            ready
                .into_iter()
                .filter_map(|txn| buf.remove(&txn).map(|entry| (txn, entry)))
                .collect()
        };
        let g = self.commit_group(group)?;
        outcome.committed = g.committed;
        outcome.stalled = g.stalled;
        // Drain any feed backlog a crashed predecessor staged but never
        // published — even on idle polls, so failover delivery does not
        // wait for new traffic.
        self.flush_feed()?;
        Ok(outcome)
    }

    /// Commits a group of fully-assembled transactions in five phases
    /// whose ordering carries the §3 invariants across the grouping
    /// (plus a phase 0 that materializes content-addressed references:
    /// each referenced CAS hash's registry records are fetched — once
    /// per hash per group, in parallel — and folded into the
    /// referencing members, whose `cas/{sha}` data objects then ride
    /// the ordinary copy fan-out below; a member whose hash never
    /// becomes visible evicts before any of its state is written):
    ///
    /// 1. **Copy** — every member's temp objects COPY into place, fanned
    ///    out over `commit_parallelism` connections. A member whose temp
    ///    never became copyable is evicted (stalled) here, before any of
    ///    its provenance exists anywhere.
    /// 2. **Base items** — all survivors' provenance items pack into
    ///    full `BatchPutAttributes` chunks ([`pack_group_writes`])
    ///    written over `db_concurrency` connections (crash point
    ///    `p3:commit:group:db`, once per chunk).
    /// 3. **Index items** — strictly after *every* base chunk, the
    ///    cross-transaction-merged ancestry-index chunks write the same
    ///    way (`p3:commit:group:index`) — the index never describes
    ///    provenance that is not stored, for any member.
    /// 4. **GC** — survivors' temp objects delete in parallel
    ///    (`p3:commit:group:gc`).
    /// 5. **Ack** — survivors' WAL receipts acknowledge through
    ///    `DeleteMessageBatch` calls (`p3:commit:group:ack`), strictly
    ///    after phases 2–3: no receipt is acked before every chunk
    ///    containing one of its transaction's items is durable.
    ///
    /// A daemon crash anywhere in the group therefore leaves every
    /// member's WAL unacknowledged (phases 1–4) or some members fully
    /// acked and the rest recommittable; every write in phases 1–3 is
    /// idempotent, so the recommit converges.
    fn commit_group(&self, group: Vec<(Uuid, TxnBuf)>) -> Result<GroupOutcome> {
        if group.is_empty() {
            return Ok(GroupOutcome::default());
        }
        let sim = self.env.sim();
        let tracer = self.env.tracer().clone();
        let t_group = sim.now();
        let s3 = self.env.s3().with_actor(Actor::CommitDaemon);
        let sdb = self.env.sdb().with_actor(Actor::CommitDaemon);
        let layout = &self.config.layout;
        let par = self.config.commit_parallelism.max(1);

        // Reassemble each member in sequence order and parse. A member
        // whose record text fails to decode (corrupt or truncated body
        // from a buggy client) is EVICTED like a stalled member, not an
        // error: propagating would abort the whole group before any
        // peer committed, and since the poison messages redeliver the
        // shard would relive the same failure every poll until the
        // 4-day retention — where the serial path at least committed
        // the healthy transactions ahead of the poison one. Evicted
        // members' messages redeliver and ultimately expire with SQS
        // retention, the paper's garbage-collection story.
        let mut poisoned = 0usize;
        let mut txns: Vec<ParsedTxn> = Vec::with_capacity(group.len());
        for (txn, entry) in group {
            let mut files: Vec<(String, String, PNodeId)> = Vec::new();
            let mut cas_shas: Vec<String> = Vec::new();
            let mut record_text = String::new();
            for body in entry.parts.values() {
                for line in body.lines() {
                    if let Some(rest) = line.strip_prefix("OBJ\t") {
                        let mut it = rest.split('\t');
                        let (Some(temp), Some(final_key), Some(id)) =
                            (it.next(), it.next(), it.next())
                        else {
                            continue;
                        };
                        if let Ok(id) = id.parse::<PNodeId>() {
                            files.push((temp.to_string(), final_key.to_string(), id));
                        }
                    } else if let Some(rest) = line.strip_prefix("CAS\t") {
                        // A content-addressed reference: the published
                        // `cas/{sha}` object joins the copy fan-out like
                        // a temp object (at its position in line order,
                        // preserving last-for-key election), and the
                        // hash's registry records join the member in
                        // phase 0.
                        let mut it = rest.split('\t');
                        let (Some(sha), Some(final_key), Some(id), Some(flag)) =
                            (it.next(), it.next(), it.next(), it.next())
                        else {
                            continue;
                        };
                        if let Ok(id) = id.parse::<PNodeId>() {
                            if flag == "d" && final_key != "-" {
                                files.push((cas::cas_object_key(sha), final_key.to_string(), id));
                            }
                            if !self.materialized.lock().contains(sha) {
                                cas_shas.push(sha.to_string());
                            }
                        }
                    } else {
                        record_text.push_str(line);
                        record_text.push('\n');
                    }
                }
            }
            let Ok(records) = wire::decode(record_text.as_bytes()) else {
                poisoned += 1;
                continue;
            };
            txns.push(ParsedTxn {
                txn,
                tenant: entry.tenant,
                ctx: entry.ctx,
                files,
                records,
                cas_shas,
                receipts: entry.receipts,
            });
        }

        // Trace: resolve each member's root (header context, or the
        // shared tracer's record when the client ran in-process), mark
        // group entry, and elect a lead root to parent the phase spans.
        // Non-lead traced members get identical phase spans under their
        // own roots, so every member's root-to-leaf walk is complete.
        let roots: Vec<Option<SpanContext>> = txns
            .iter()
            .map(|t| {
                let ctx = t.ctx.or_else(|| tracer.root_ctx(t.txn.0));
                if let Some(c) = ctx {
                    tracer.register_root(c, t.tenant.map(|x| x.0));
                    tracer.mark_group_start(c.trace, t_group);
                }
                ctx
            })
            .collect();
        let lead = roots.iter().flatten().next().copied();
        let member_tenants: Vec<Option<u32>> = txns.iter().map(|t| t.tenant.map(|x| x.0)).collect();

        // Phase 0: materialize CAS references — fetch each referenced
        // hash's registry item (once per hash per group, fanned out in
        // parallel) and fold its records into the referencing members.
        // The client's flusher only logs a reference after its publish
        // is durable, so a hash that never becomes visible within the
        // copy-style retry budget is either registry eventual
        // consistency that outlived the budget or a corrupt entry; the
        // member evicts like a stalled copy and its messages redeliver.
        // The `copy` phase span covers phases 0–1 (CAS materialization
        // + data copies); its scope parents the daemon's metered ops.
        let g_copy = lead.and_then(|l| {
            tracer.phase(
                l.trace,
                l.span,
                "copy",
                None,
                Some((SCOPE_COMMIT_DAEMON, None)),
                t_group,
            )
        });
        let mut stalled: Vec<bool> = vec![false; txns.len()];
        let needed: Vec<String> = {
            let mut seen = BTreeSet::new();
            txns.iter()
                .flat_map(|t| t.cas_shas.iter())
                .filter(|sha| seen.insert(sha.to_string()))
                .cloned()
                .collect()
        };
        if !needed.is_empty() {
            let mut tasks: Vec<CasFetchTask> = Vec::new();
            for sha in &needed {
                let env = self.env.clone();
                let config = self.config.clone();
                let sha = sha.clone();
                tasks.push(Box::new(move || fetch_cas_records(&env, &config, &sha)));
            }
            let mut fetched: BTreeMap<String, Vec<ProvenanceRecord>> = BTreeMap::new();
            for (sha, r) in needed.iter().zip(sim.run_parallel(par, tasks)) {
                if let Some(records) = r? {
                    fetched.insert(sha.clone(), records);
                }
            }
            for (ti, t) in txns.iter_mut().enumerate() {
                for sha in &t.cas_shas {
                    match fetched.get(sha) {
                        Some(records) => t.records.extend(records.iter().cloned()),
                        None => stalled[ti] = true,
                    }
                }
            }
        }

        // Phase 1: COPY temp -> permanent, stamping uuid+version
        // metadata, for EVERY member before ANY provenance is written.
        // Data commits strictly before provenance: a transaction whose
        // temp object never arrived (the client died after logging the
        // WAL but before its parallel temp PUT landed) stalls HERE — so
        // a dead client can never leave provenance describing data that
        // does not exist (§3's "old data based on new provenance"
        // hazard). The short window where data is visible without
        // provenance is ordinary eventual coupling and closes when phase
        // 2 lands (or on recommit, since the WAL messages are only
        // acknowledged at the very end). A daemon that dies in that
        // window AND whose WAL then expires unrecovered leaves the data
        // permanently ProvenanceMissing — the *detectable* side of the
        // tradeoff; the reverse order risked the misleading side,
        // permanent phantom provenance.
        // Across group members, copies of one final key are unordered —
        // exactly as cross-transaction commit order always was (the
        // serial path committed ready transactions in receive order,
        // and SQS receives sample uniformly). Every interleaving is
        // safe because a copy moves data and version metadata
        // atomically, so any winner leaves a self-consistent, coupled
        // object whose provenance is written by phases 2-3.
        //
        // A transaction's file list can name one final key twice: the
        // closure may carry a historic version of a file alongside the
        // version being closed, ancestors first. The serial path copied
        // them in list order, so the LAST entry (the newest version)
        // always defined the final (data, metadata) pair and the earlier
        // copies were transient states it immediately overwrote. With
        // copies fanned out in parallel that ordering would be lost —
        // so only each key's last entry is copied at all (the winner the
        // serial path produced), which also saves the transient COPY
        // requests. The skipped entries' temp objects still reach the
        // GC phase.
        let mut owners: Vec<usize> = Vec::new();
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = Vec::new();
        for (ti, t) in txns.iter().enumerate() {
            if stalled[ti] {
                // Evicted in phase 0 (unmaterializable CAS reference):
                // none of its data commits either.
                continue;
            }
            let mut last_for_key: BTreeMap<&str, usize> = BTreeMap::new();
            for (fi, (_, final_key, _)) in t.files.iter().enumerate() {
                last_for_key.insert(final_key, fi);
            }
            for (fi, (temp, final_key, id)) in t.files.iter().enumerate() {
                if last_for_key.get(final_key.as_str()) != Some(&fi) {
                    continue;
                }
                owners.push(ti);
                let env = self.env.clone();
                let config = self.config.clone();
                let (temp, final_key, id, txn) = (temp.clone(), final_key.clone(), *id, t.txn);
                tasks.push(Box::new(move || {
                    copy_into_place(&env, &config, txn, &temp, &final_key, id)
                }));
            }
        }
        for (ti, r) in owners.into_iter().zip(sim.run_parallel(par, tasks)) {
            match r {
                Ok(()) => {}
                // A stalled member must not block its group peers: evict
                // it and let redelivery/retention handle it.
                Err(ProtocolError::CommitStalled(_)) => stalled[ti] = true,
                Err(e) => return Err(e),
            }
        }
        let survivors: Vec<usize> = (0..txns.len()).filter(|ti| !stalled[*ti]).collect();

        let t_copy_end = sim.now();
        if let Some(g) = g_copy {
            g.finish(t_copy_end);
        }
        emit_member_phase_spans(
            &tracer,
            &roots,
            lead,
            &member_tenants,
            "copy",
            t_group,
            t_copy_end,
        );
        for (ti, s) in stalled.iter().enumerate() {
            if *s {
                if let Some(r) = roots[ti] {
                    // Evicted members' roots never close; annotate so the
                    // open trace explains itself.
                    tracer.event(r, "evicted", t_copy_end);
                }
            }
        }
        // The `db` phase span covers value spills + base-item chunks.
        let g_db = lead.and_then(|l| {
            tracer.phase(
                l.trace,
                l.span,
                "db",
                None,
                Some((SCOPE_COMMIT_DAEMON, None)),
                t_copy_end,
            )
        });

        // Phases 2+3: spill oversized values, then pack every survivor's
        // base items — and the cross-transaction-merged index items —
        // into full chunks, written in parallel with a hard barrier
        // between the base and index phases.
        let mut base_items: Vec<PutItem> = Vec::new();
        let mut index_items: Vec<PutItem> = Vec::new();
        let mut touches: Vec<StagedTouches> = Vec::new();
        for &ti in &survivors {
            // The records are not needed after this phase: move them
            // out instead of cloning hundreds of strings per member.
            let records = std::mem::take(&mut txns[ti].records);
            if self.feed.is_some() {
                let (uuids, programs) = extract_touches(&records);
                touches.push(StagedTouches {
                    txn: txns[ti].txn,
                    tenant: txns[ti].tenant,
                    uuids,
                    programs,
                });
            }
            if self.config.index {
                index_items.extend(crate::index::index_updates(&records));
            }
            let mut by_subject: BTreeMap<PNodeId, Vec<ProvenanceRecord>> = BTreeMap::new();
            for r in records {
                by_subject.entry(r.subject).or_default().push(r);
            }
            for (id, recs) in &by_subject {
                base_items.push(records_to_item(
                    sim,
                    &s3,
                    layout,
                    self.config.retries,
                    *id,
                    recs,
                )?);
            }
        }
        let index_items = crate::index::merge_index_items(index_items);
        let plan = pack_group_writes(
            base_items,
            index_items,
            self.config.db_batch.clamp(1, BATCH_LIMIT),
            self.config.db_concurrency.max(1),
        );
        self.write_chunks(
            &sdb,
            &layout.domain,
            &plan.base_chunks,
            "p3:commit:group:db",
        )?;
        let t_db_end = sim.now();
        if let Some(g) = g_db {
            g.finish(t_db_end);
        }
        emit_member_phase_spans(
            &tracer,
            &roots,
            lead,
            &member_tenants,
            "db",
            t_copy_end,
            t_db_end,
        );
        let g_index = lead.and_then(|l| {
            tracer.phase(
                l.trace,
                l.span,
                "index",
                None,
                Some((SCOPE_COMMIT_DAEMON, None)),
                t_db_end,
            )
        });
        self.write_chunks(
            &sdb,
            &crate::index::index_domain(&layout.domain),
            &plan.index_chunks,
            "p3:commit:group:index",
        )?;
        let t_index_end = sim.now();
        if let Some(g) = g_index {
            g.finish(t_index_end);
        }
        emit_member_phase_spans(
            &tracer,
            &roots,
            lead,
            &member_tenants,
            "index",
            t_db_end,
            t_index_end,
        );
        // The `ack` phase span covers the commit tail: temp GC, feed
        // staging, and the WAL acknowledgement batches.
        let g_ack = lead.and_then(|l| {
            tracer.phase(
                l.trace,
                l.span,
                "ack",
                None,
                Some((SCOPE_COMMIT_DAEMON, None)),
                t_index_end,
            )
        });

        // Phase 4: delete the survivors' temp objects. S3 has no batch
        // delete in 2009, so the amortization is the parallel fan-out.
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = Vec::new();
        for &ti in &survivors {
            for (temp, _, _) in &txns[ti].files {
                if !temp.starts_with(&layout.temp_prefix) {
                    // A `cas/…` source is shared, fleet-wide published
                    // content — other transactions (on other shards,
                    // later) reference the same hash. Never GC'd here.
                    continue;
                }
                let env = self.env.clone();
                let config = self.config.clone();
                let temp = temp.clone();
                tasks.push(Box::new(move || -> Result<()> {
                    config.step("p3:commit:group:gc")?;
                    let s3 = env.s3().with_actor(Actor::CommitDaemon);
                    retry(env.sim(), config.retries, || {
                        s3.delete(&config.layout.data_bucket, &temp)
                    })?;
                    Ok(())
                }));
            }
        }
        sim.run_parallel(par, tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;

        // Phase 4.5: durably stage the group's change-feed events —
        // strictly BEFORE any receipt acknowledges (crash point
        // `p3:notify:stage`). A crash here leaves the WAL unacked; the
        // group recommits and restages under fresh sequence numbers,
        // so a consumer can see a transaction's event twice but never
        // miss it (at-least-once, gap-free).
        if let Some(w) = &self.feed {
            w.stage(&touches)?;
        }

        // Phase 5: acknowledge the survivors' WAL receipts in
        // DeleteMessageBatch calls — strictly after every chunk carrying
        // their items was durable. Lenient like the single-delete path
        // was: a failed acknowledgement redelivers and is dropped as an
        // already-committed transaction on a later poll.
        let receipts: Vec<String> = survivors
            .iter()
            .flat_map(|&ti| txns[ti].receipts.iter().cloned())
            .collect();
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = Vec::new();
        for chunk in receipts.chunks(BATCH_ENTRY_LIMIT) {
            let env = self.env.clone();
            let config = self.config.clone();
            let wal_url = self.wal_url.clone();
            let chunk = chunk.to_vec();
            tasks.push(Box::new(move || -> Result<()> {
                config.step("p3:commit:group:ack")?;
                let sqs = env.sqs().with_actor(Actor::CommitDaemon);
                let _ = retry(env.sim(), config.retries, || {
                    sqs.delete_batch(&wal_url, &chunk)
                });
                Ok(())
            }));
        }
        sim.run_parallel(par, tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;

        // Committed instant. Nothing below advances the virtual clock
        // before the commit listener observes the group, so closing each
        // survivor's root HERE makes root duration exactly equal the
        // measured WAL-durable -> committed latency.
        let t_committed = sim.now();
        if let Some(g) = g_ack {
            g.finish(t_committed);
        }
        emit_member_phase_spans(
            &tracer,
            &roots,
            lead,
            &member_tenants,
            "ack",
            t_index_end,
            t_committed,
        );
        for &ti in &survivors {
            if let Some(r) = roots[ti] {
                tracer.close_txn(r.trace, t_committed);
            }
        }

        {
            let mut committed = self.committed.lock();
            for &ti in &survivors {
                committed.insert(txns[ti].txn);
            }
        }
        {
            // Survivors' CAS records are durable in the provenance
            // domain now — this daemon need not refetch those hashes.
            let mut materialized = self.materialized.lock();
            for &ti in &survivors {
                for sha in &txns[ti].cas_shas {
                    materialized.insert(sha.clone());
                }
            }
        }
        self.committed_count
            .fetch_add(survivors.len() as u64, Ordering::Relaxed);
        if let Some(l) = self.listener.lock().clone() {
            for &ti in &survivors {
                l(txns[ti].txn);
            }
        }
        // Phase 6: publish the staged events to the sink and advance the
        // watermark — strictly AFTER the group ack (`p3:notify:publish`,
        // `p3:notify:wm`). A crash in here republishes on the next poll.
        self.flush_feed()?;
        Ok(GroupOutcome {
            committed: survivors.len(),
            stalled: stalled.iter().filter(|s| **s).count() + poisoned,
        })
    }

    /// Writes one phase's chunks over `db_concurrency` parallel
    /// connections, checking `step` once per chunk. Returns only when
    /// every chunk is durable — the barrier between the base and index
    /// phases, and between the index phase and the acknowledgements.
    fn write_chunks(
        &self,
        sdb: &Database,
        domain: &str,
        chunks: &[Vec<PutItem>],
        step: &'static str,
    ) -> Result<()> {
        if chunks.is_empty() {
            return Ok(());
        }
        let tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = chunks
            .iter()
            .map(|chunk| {
                let sdb = sdb.clone();
                let env = self.env.clone();
                let config = self.config.clone();
                let domain = domain.to_string();
                let chunk = chunk.clone();
                Box::new(move || -> Result<()> {
                    config.step(step)?;
                    retry(env.sim(), config.retries, || {
                        sdb.batch_put_attributes(&domain, chunk.clone())
                    })?;
                    Ok(())
                }) as Box<dyn FnOnce() -> Result<()> + Send>
            })
            .collect();
        self.env
            .sim()
            .run_parallel(self.config.db_concurrency.max(1), tasks)
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
        Ok(())
    }

    /// Polls until a round yields no messages. Useful for deterministic
    /// tests and for benchmarks that want the daemon cost measured.
    pub fn run_until_idle(&self) -> Result<u64> {
        let mut committed = 0;
        loop {
            let o = self.poll_once()?;
            committed += o.committed as u64;
            if o.messages == 0 {
                return Ok(committed);
            }
        }
    }

    /// Runs the daemon on a background simulated thread until stopped.
    pub fn spawn(self: Arc<Self>, poll_interval: Duration) -> DaemonHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let sim = self.env.sim().clone();
        let handle = sim.clone().spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match self.poll_once() {
                    Ok(o) if o.messages == 0 => sim.sleep(poll_interval),
                    Ok(_) => {}
                    Err(_) => sim.sleep(poll_interval),
                }
            }
        });
        DaemonHandle { stop, handle }
    }
}

/// One CAS-blob fetch, boxed for `Sim::run_parallel`.
type CasFetchTask = Box<dyn FnOnce() -> Result<Option<Vec<ProvenanceRecord>>> + Send>;

type ParsedHeader = (
    Uuid,
    usize,
    usize,
    Option<TenantId>,
    Option<SpanContext>,
    String,
);

fn parse_header(body: &str) -> Option<ParsedHeader> {
    let (header, rest) = body.split_once('\n')?;
    let mut it = header.split('\t');
    if it.next()? != "TXN" {
        return None;
    }
    let txn: Uuid = it.next()?.parse().ok()?;
    let seq: usize = it.next()?.parse().ok()?;
    let total: usize = it.next()?.parse().ok()?;
    // Optional trailing fields, self-describing so old headers parse
    // unchanged: a numeric field is the logging client's tenant, a
    // `ctx:`-prefixed field is its trace context.
    let mut tenant = None;
    let mut ctx = None;
    for field in it {
        if let Some(c) = SpanContext::decode(field) {
            ctx = Some(c);
        } else if let Ok(t) = field.parse() {
            tenant = Some(TenantId(t));
        }
    }
    Some((txn, seq, total, tenant, ctx, rest.to_string()))
}

/// Mirrors one group-commit phase span onto every traced non-lead
/// member's root, so each member's trace tree carries the full phase
/// sequence (the lead's copy is emitted by its [`cloudprov_trace::PhaseGuard`]).
fn emit_member_phase_spans(
    tracer: &Tracer,
    roots: &[Option<SpanContext>],
    lead: Option<SpanContext>,
    tenants: &[Option<u32>],
    kind: &'static str,
    t_start: SimTime,
    t_end: SimTime,
) {
    if !tracer.enabled() {
        return;
    }
    for (root, tenant) in roots.iter().zip(tenants) {
        let Some(root) = root else { continue };
        if Some(*root) == lead {
            continue;
        }
        tracer.span(
            root.trace,
            Some(root.span),
            kind,
            kind,
            *tenant,
            t_start,
            t_end,
            0.0,
        );
    }
}

/// Handle to a running background daemon.
#[derive(Debug)]
pub struct DaemonHandle {
    stop: Arc<AtomicBool>,
    handle: SimHandle<()>,
}

impl DaemonHandle {
    /// Signals the daemon and waits (in virtual time) for it to exit.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join();
    }
}

/// The cleaner daemon: removes temporary objects older than the retention
/// window — the garbage left by transactions whose client crashed before
/// logging every packet (§4.3.3: "We use a cleaner daemon to remove
/// temporary objects that have not been accessed for 4 days").
pub struct CleanerDaemon {
    env: CloudEnv,
    config: ProtocolConfig,
    max_age: Duration,
}

impl std::fmt::Debug for CleanerDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanerDaemon")
            .field("max_age", &self.max_age)
            .finish()
    }
}

impl CleanerDaemon {
    /// Creates a cleaner with the paper's 4-day window.
    pub fn new(env: &CloudEnv, config: ProtocolConfig) -> CleanerDaemon {
        CleanerDaemon {
            env: env.clone(),
            config,
            max_age: cloudprov_cloud::RETENTION,
        }
    }

    /// Overrides the reclamation age (tests).
    pub fn with_max_age(mut self, max_age: Duration) -> CleanerDaemon {
        self.max_age = max_age;
        self
    }

    /// One sweep: lists the temp prefix and deletes expired objects.
    /// Returns how many were reclaimed.
    pub fn clean_once(&self) -> Result<usize> {
        let s3 = self.env.s3().with_actor(Actor::CleanerDaemon);
        let layout = &self.config.layout;
        let keys = retry(self.env.sim(), self.config.retries, || {
            s3.list_all(&layout.data_bucket, &layout.temp_prefix)
        })?;
        let now = self.env.sim().now();
        let mut reclaimed = 0;
        for k in keys {
            if now.saturating_duration_since(k.last_modified) > self.max_age {
                self.config.step(&format!("p3:clean:{}", k.key))?;
                retry(self.env.sim(), self.config.retries, || {
                    s3.delete(&layout.data_bucket, &k.key)
                })?;
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::{AwsProfile, Blob};
    use cloudprov_pass::{Attr, FlushNode, NodeKind};
    use cloudprov_sim::Sim;

    use crate::protocol::FlushObject;

    fn setup() -> (Sim, CloudEnv, P3) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, ProtocolConfig::default(), "wal-client1");
        (sim, env, p3)
    }

    fn file_obj(uuid: u128, version: u32, key: &str, data: &str) -> FlushObject {
        let id = PNodeId {
            uuid: Uuid(uuid),
            version,
        };
        let blob = Blob::from(data);
        FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some(key.to_string()),
                records: vec![
                    ProvenanceRecord::new(id, Attr::Type, "file"),
                    ProvenanceRecord::new(id, Attr::Name, key),
                    ProvenanceRecord::new(
                        id,
                        Attr::DataHash,
                        format!("{:016x}", blob.content_fingerprint()),
                    ),
                ],
                data_hash: Some(blob.content_fingerprint()),
            },
            key,
            blob,
        )
    }

    #[test]
    fn log_phase_leaves_data_in_temp_until_commit() {
        let (_sim, env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(1, 1, "out", "payload")],
        })
        .unwrap();
        // Before the daemon runs: temp object exists, final does not.
        assert!(env.s3().peek_count("data", "tmp/") > 0);
        assert!(env.s3().peek_committed("data", "out").is_none());
        assert!(env.sqs().peek_depth(p3.wal_url()) > 0);

        let daemon = p3.commit_daemon();
        let committed = daemon.run_until_idle().unwrap();
        assert_eq!(committed, 1);
        // After commit: final object exists with metadata, temp gone, WAL empty.
        let final_obj = env.s3().peek_committed("data", "out").unwrap();
        assert_eq!(final_obj.blob, Blob::from("payload"));
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0);
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
        // And provenance is in SimpleDB.
        assert!(env
            .sdb()
            .peek_item(
                "provenance",
                &PNodeId {
                    uuid: Uuid(1),
                    version: 1
                }
                .to_string()
            )
            .is_some());
    }

    #[test]
    fn read_after_commit_is_coupled() {
        let (_sim, _env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(2, 1, "out", "data!")],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        let r = p3.read("out").unwrap();
        assert_eq!(r.coupling, CouplingCheck::Coupled);
        assert_eq!(r.data, Blob::from("data!"));
    }

    #[test]
    fn incomplete_transaction_is_ignored() {
        // Client crashes after sending only some WAL packets: the daemon
        // must never commit the partial transaction (§4.3.3).
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        // Enough records that the WAL needs >1 *batch* of messages
        // (batches carry up to ten 8 KB messages); crash on batch 1.
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| step != "p3:wal:1")),
            ..ProtocolConfig::default()
        };
        let p3 = P3::new(&env, cfg, "wal");
        let id = PNodeId::initial(Uuid(3));
        let records: Vec<_> = (0..2500)
            .map(|i| ProvenanceRecord::new(id, Attr::Custom(format!("a{i}")), "v".repeat(40)))
            .collect();
        let obj = FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some("big".into()),
                records,
                data_hash: Some(1),
            },
            "big",
            Blob::from("x"),
        );
        let err = p3.flush(FlushBatch { objects: vec![obj] }).unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));

        let daemon = p3.commit_daemon();
        daemon.run_until_idle().unwrap();
        assert_eq!(daemon.committed_transactions(), 0);
        assert!(env.s3().peek_committed("data", "big").is_none());
        assert_eq!(env.sdb().peek_item_count("provenance"), 0);
    }

    #[test]
    fn another_machine_can_commit_after_client_logged_everything() {
        // The WAL-in-the-cloud argument: client finishes the log phase and
        // dies; a daemon on a DIFFERENT machine commits the transaction.
        let (_sim, env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(4, 1, "out", "survives")],
        })
        .unwrap();
        drop(p3); // client is gone
        let other_machine = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-client1");
        let committed = other_machine.run_until_idle().unwrap();
        assert_eq!(committed, 1);
        assert_eq!(
            env.s3().peek_committed("data", "out").unwrap().blob,
            Blob::from("survives")
        );
    }

    #[test]
    fn multi_message_transactions_reassemble() {
        let (_sim, env, p3) = setup();
        let id = PNodeId::initial(Uuid(5));
        // 240 records of ~140 bytes: several 8 KB messages, but within
        // SimpleDB's 256-attributes-per-item limit.
        let records: Vec<_> = (0..240)
            .map(|i| ProvenanceRecord::new(id, Attr::Custom(format!("k{i}")), "v".repeat(100)))
            .collect();
        let n_records = records.len();
        let obj = FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some("big".into()),
                records,
                data_hash: Some(2),
            },
            "big",
            Blob::from("content"),
        );
        p3.flush(FlushBatch { objects: vec![obj] }).unwrap();
        assert!(
            env.sqs().peek_depth(p3.wal_url()) > 3,
            "expected several 8KB chunks"
        );
        p3.commit_daemon().run_until_idle().unwrap();
        let item = env.sdb().peek_item("provenance", &id.to_string()).unwrap();
        assert_eq!(item.len(), n_records);
    }

    #[test]
    fn ancestors_ride_in_the_same_transaction() {
        // "We include all not-yet-written ancestors of an object in the
        // object's transaction" — so causal ordering holds even with
        // parallel sends.
        let (_sim, env, p3) = setup();
        let proc_id = PNodeId::initial(Uuid(6));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(7, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        // Both the process and the file item exist; no dangling input.
        assert!(env
            .sdb()
            .peek_item("provenance", &proc_id.to_string())
            .is_some());
        let file_item = env
            .sdb()
            .peek_item("provenance", &format!("{}_1", Uuid(7)))
            .unwrap();
        assert!(file_item
            .iter()
            .any(|(k, v)| k == "input" && *v == proc_id.to_string()));
    }

    #[test]
    fn duplicate_deliveries_commit_once() {
        let (_sim, env, p3) = setup();
        env.faults().set(cloudprov_cloud::FaultPlan {
            sqs_duplicate_probability: 0.5,
            ..cloudprov_cloud::FaultPlan::none()
        });
        p3.flush(FlushBatch {
            objects: vec![file_obj(8, 1, "out", "once")],
        })
        .unwrap();
        let daemon = p3.commit_daemon();
        // Poll repeatedly; duplicates must not double-commit.
        for _ in 0..20 {
            daemon.poll_once().unwrap();
        }
        env.faults().clear();
        daemon.run_until_idle().unwrap();
        assert_eq!(daemon.committed_transactions(), 1);
        assert_eq!(
            env.s3().peek_committed("data", "out").unwrap().blob,
            Blob::from("once")
        );
    }

    #[test]
    fn commit_maintains_the_ancestry_index() {
        let (_sim, env, p3) = setup();
        let proc_id = PNodeId::initial(Uuid(30));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(31, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        let audit = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(audit.consistent(), "{audit:?}");
        assert!(audit.entries >= 2, "rev edge + program seed expected");
    }

    #[test]
    fn crash_between_base_and_index_write_heals_on_recommit() {
        // The p3:commit:group:index crash point: base records land, the
        // index write dies, the WAL stays unacknowledged. A fresh
        // daemon's recommit must leave base and index consistent (both
        // writes are idempotent).
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| step != "p3:commit:group:index")),
            ..ProtocolConfig::default()
        };
        let p3 = P3::new(&env, cfg, "wal-idx");
        let proc_id = PNodeId::initial(Uuid(40));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(41, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();
        let dying = p3.commit_daemon();
        let err = dying.run_until_idle().unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));
        // Base records committed, index did not: temporarily divergent.
        assert!(env.sdb().peek_item_count("provenance") > 0);
        let mid = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(!mid.consistent(), "crash must leave the gap this models");
        // WAL unacknowledged: a recovery daemon redelivers and recommits.
        sim.sleep(cloudprov_cloud::DEFAULT_VISIBILITY_TIMEOUT + Duration::from_secs(1));
        let recovery = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-idx");
        recovery.run_until_idle().unwrap();
        let audit = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(audit.consistent(), "{audit:?}");
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
    }

    #[test]
    fn disabling_the_index_skips_index_writes() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let cfg = ProtocolConfig {
            index: false,
            ..ProtocolConfig::default()
        };
        let p3 = P3::new(&env, cfg, "wal-noidx");
        assert!(matches!(
            p3.provenance_store(),
            Some(ProvenanceStore::Database {
                index_domain: None,
                ..
            })
        ));
        p3.flush(FlushBatch {
            objects: vec![file_obj(50, 1, "out", "x")],
        })
        .unwrap();
        p3.commit_daemon().run_until_idle().unwrap();
        assert_eq!(
            env.sdb()
                .peek_item_count(&crate::index::index_domain("provenance")),
            0
        );
    }

    #[test]
    fn cleaner_reaps_only_expired_orphans() {
        let (sim, env, p3) = setup();
        // Orphan a temp object by crashing before any WAL send.
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| !step.starts_with("p3:wal:"))),
            ..ProtocolConfig::default()
        };
        let crasher = P3::new(&env, cfg, "wal-crasher");
        let _ = crasher.flush(FlushBatch {
            objects: vec![file_obj(9, 1, "orphaned", "lost")],
        });
        assert_eq!(env.s3().peek_count("data", "tmp/"), 1);

        let cleaner = p3.cleaner_daemon();
        // Too young: nothing reclaimed.
        assert_eq!(cleaner.clean_once().unwrap(), 0);
        // After 4 days it goes.
        sim.sleep(Duration::from_secs(4 * 24 * 3600 + 60));
        assert_eq!(cleaner.clean_once().unwrap(), 1);
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0);
    }

    #[test]
    fn background_daemon_commits_while_client_works() {
        let (sim, env, p3) = setup();
        let daemon = Arc::new(p3.commit_daemon());
        let handle = daemon.clone().spawn(Duration::from_secs(5));
        for i in 0..5u128 {
            p3.flush(FlushBatch {
                objects: vec![file_obj(20 + i, 1, &format!("f{i}"), "d")],
            })
            .unwrap();
        }
        // Give the daemon virtual time to drain.
        sim.sleep(Duration::from_secs(120));
        handle.stop();
        assert_eq!(daemon.committed_transactions(), 5);
        for i in 0..5 {
            assert!(env.s3().peek_committed("data", &format!("f{i}")).is_some());
        }
    }

    #[test]
    fn wal_messages_respect_sqs_limit() {
        let id = PNodeId::initial(Uuid(11));
        let records: Vec<_> = (0..2000)
            .map(|i| ProvenanceRecord::new(id, Attr::Custom(format!("a{i}")), "z".repeat(50)))
            .collect();
        let msgs = P3::build_messages(Uuid(1), None, None, &[], &records, MESSAGE_LIMIT);
        assert!(msgs.len() > 10);
        for m in &msgs {
            assert!(m.len() <= MESSAGE_LIMIT, "message of {} bytes", m.len());
        }
    }

    /// Step hook that kills the process at the `occurrence`-th crossing
    /// of exactly `target` — and keeps it dead, like a real kill.
    fn kill_at_occurrence(target: &'static str, occurrence: u64) -> crate::StepHook {
        crate::protocol::kill_at_occurrence(target, occurrence).0
    }

    #[test]
    fn one_poll_commits_a_cross_transaction_group() {
        let (_sim, env, p3) = setup();
        for i in 0..6u128 {
            p3.flush(FlushBatch {
                objects: vec![file_obj(100 + i, 1, &format!("g{i}"), "d")],
            })
            .unwrap();
        }
        let daemon = p3.commit_daemon();
        let o = daemon.poll_once().unwrap();
        assert_eq!(o.committed, 6, "one poll round commits the whole group");
        assert_eq!(o.stalled, 0);
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
        for i in 0..6 {
            assert!(env.s3().peek_committed("data", &format!("g{i}")).is_some());
        }
        // The group's WAL acknowledgements drained through ONE batched
        // delete call, not one round trip per transaction.
        let usage = env.usage();
        let acks = usage.get(
            cloudprov_cloud::Actor::CommitDaemon,
            cloudprov_cloud::Service::Queue,
            cloudprov_cloud::Op::Delete,
        );
        assert_eq!(acks.count, 1, "six receipts must ack as one batch");
    }

    #[test]
    fn garbage_messages_drop_through_the_batched_path() {
        let (_sim, env, p3) = setup();
        for i in 0..3 {
            env.sqs()
                .send(p3.wal_url(), Bytes::from(format!("not-a-txn-{i}")))
                .unwrap();
        }
        let daemon = p3.commit_daemon();
        let o = daemon.poll_once().unwrap();
        assert_eq!(o.messages, 3);
        assert_eq!(o.dropped, 3, "garbage is counted, not silently eaten");
        assert_eq!(o.committed, 0);
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
    }

    #[test]
    fn redelivery_of_a_committed_transaction_counts_as_dropped() {
        let (_sim, env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(110, 1, "dup", "x")],
        })
        .unwrap();
        // Capture the WAL body (peek-receive and release), as an
        // at-least-once duplicate a lagging SQS host could still hold.
        let held = env.sqs().receive(p3.wal_url(), 10).unwrap();
        assert_eq!(held.len(), 1);
        let body = held[0].body.clone();
        env.sqs()
            .change_visibility(p3.wal_url(), &held[0].receipt, Duration::ZERO)
            .unwrap();
        let daemon = p3.commit_daemon();
        let first = daemon.poll_once().unwrap();
        assert_eq!(first.committed, 1);
        // The duplicate arrives AFTER the commit: the daemon must drop
        // it through the batched path and count it.
        env.sqs().send(p3.wal_url(), body).unwrap();
        let o = daemon.poll_once().unwrap();
        assert_eq!(o.messages, 1);
        assert_eq!(o.dropped, 1, "late redelivery is counted, not re-buffered");
        assert_eq!(o.committed, 0);
        assert_eq!(daemon.committed_transactions(), 1);
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
    }

    #[test]
    fn crash_between_group_db_chunks_heals_on_recommit() {
        // Kill the daemon after the first cross-transaction DB chunk
        // landed but before the rest: some members' items are durable,
        // none are acknowledged. The recovery daemon's recommit must
        // converge — every transaction exactly once, index audit clean.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, ProtocolConfig::default(), "wal-grp-db");
        for i in 0..6u128 {
            let proc_id = PNodeId::initial(Uuid(200 + i));
            let proc = FlushObject::provenance_only(FlushNode {
                id: proc_id,
                kind: NodeKind::Process,
                name: Some(format!("gen{i}")),
                records: vec![
                    ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                    ProvenanceRecord::new(proc_id, Attr::Name, format!("gen{i}")),
                ],
                data_hash: None,
            });
            let mut file = file_obj(300 + i, 1, &format!("o{i}"), "x");
            file.node
                .records
                .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
            p3.flush(FlushBatch {
                objects: vec![proc, file],
            })
            .unwrap();
        }
        let dying_cfg = ProtocolConfig {
            step_hook: Some(kill_at_occurrence("p3:commit:group:db", 2)),
            ..ProtocolConfig::default()
        };
        let dying = CommitDaemon::new(&env, dying_cfg, "sqs://wal-grp-db");
        let err = dying.run_until_idle().unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));
        assert_eq!(dying.committed_transactions(), 0, "no member acked yet");
        // Unacknowledged WAL: a fresh daemon recommits everything.
        sim.sleep(cloudprov_cloud::DEFAULT_VISIBILITY_TIMEOUT + Duration::from_secs(1));
        let recovery = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-grp-db");
        recovery.run_until_idle().unwrap();
        assert_eq!(recovery.committed_transactions(), 6);
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0);
        for i in 0..6 {
            let r = p3.read(&format!("o{i}")).unwrap();
            assert_eq!(r.coupling, CouplingCheck::Coupled, "o{i}");
        }
        let audit = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(audit.consistent(), "{audit:?}");
    }

    #[test]
    fn crash_between_gc_and_ack_heals_without_double_commit() {
        // Kill the daemon after the group's temps were deleted but
        // before any WAL receipt was acknowledged: everything is durable
        // yet the whole group redelivers. The recommit must verify the
        // copies via the final keys (the temps are gone), rewrite the
        // idempotent items, and leave no duplicate effects.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, ProtocolConfig::default(), "wal-grp-ack");
        for i in 0..4u128 {
            p3.flush(FlushBatch {
                objects: vec![file_obj(400 + i, 1, &format!("a{i}"), "payload")],
            })
            .unwrap();
        }
        let dying_cfg = ProtocolConfig {
            step_hook: Some(kill_at_occurrence("p3:commit:group:ack", 1)),
            ..ProtocolConfig::default()
        };
        let dying = CommitDaemon::new(&env, dying_cfg, "sqs://wal-grp-ack");
        let err = dying.run_until_idle().unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));
        assert!(
            env.sqs().peek_depth(p3.wal_url()) > 0,
            "nothing was acknowledged"
        );
        sim.sleep(cloudprov_cloud::DEFAULT_VISIBILITY_TIMEOUT + Duration::from_secs(1));
        let recovery = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-grp-ack");
        let committed_ids = Arc::new(Mutex::new(Vec::<Uuid>::new()));
        recovery.set_commit_listener({
            let ids = committed_ids.clone();
            Arc::new(move |txn| ids.lock().push(txn))
        });
        recovery.run_until_idle().unwrap();
        let ids = committed_ids.lock().clone();
        let distinct: BTreeSet<Uuid> = ids.iter().copied().collect();
        assert_eq!(ids.len(), 4, "every member recommits exactly once");
        assert_eq!(distinct.len(), 4, "no double commit");
        assert_eq!(env.sqs().peek_depth(p3.wal_url()), 0);
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0);
        for i in 0..4 {
            let r = p3.read(&format!("a{i}")).unwrap();
            assert_eq!(r.coupling, CouplingCheck::Coupled, "a{i}");
        }
        let audit = crate::index::audit_index(&env, &crate::Layout::default());
        assert!(audit.consistent(), "{audit:?}");
    }

    #[test]
    fn stalled_member_is_evicted_without_blocking_the_group() {
        // One client's temp PUT dies after its WAL was fully logged; its
        // group peers must still commit in the same poll, and the
        // stalled member is reported, not fatal.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let good = P3::new(&env, ProtocolConfig::default(), "wal-stall");
        let crasher_cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| !step.starts_with("p3:temp:"))),
            ..ProtocolConfig::default()
        };
        let crasher = P3::with_identity(&env, crasher_cfg, "wal-stall", "crasher");
        let _ = crasher.flush(FlushBatch {
            objects: vec![file_obj(500, 1, "lost", "never-arrives")],
        });
        for i in 0..3u128 {
            good.flush(FlushBatch {
                objects: vec![file_obj(510 + i, 1, &format!("ok{i}"), "d")],
            })
            .unwrap();
        }
        let daemon = good.commit_daemon();
        let o = daemon.poll_once().unwrap();
        assert_eq!(o.stalled, 1, "the temp-less member stalls");
        assert_eq!(o.committed, 3, "its peers commit in the same group");
        for i in 0..3 {
            assert!(env.s3().peek_committed("data", &format!("ok{i}")).is_some());
        }
        assert!(env.s3().peek_committed("data", "lost").is_none());
    }

    #[test]
    fn poisoned_member_is_evicted_without_blocking_the_group() {
        // A fully-assembled transaction whose record text does not
        // decode must not abort the group: its healthy peers commit in
        // the same poll, and the poison member is reported as stalled
        // (its messages redeliver and ultimately expire with
        // retention).
        let (_sim, env, p3) = setup();
        for i in 0..3u128 {
            p3.flush(FlushBatch {
                objects: vec![file_obj(700 + i, 1, &format!("h{i}"), "d")],
            })
            .unwrap();
        }
        // Valid TXN header, garbage record body (fails wire::decode).
        env.sqs()
            .send(
                p3.wal_url(),
                Bytes::from_static(
                    b"TXN\t00000000000000000000000000000063\t0\t1\nnot-a-wire-record",
                ),
            )
            .unwrap();
        let daemon = p3.commit_daemon();
        let o = daemon.poll_once().unwrap();
        assert_eq!(o.committed, 3, "healthy peers commit");
        assert_eq!(o.stalled, 1, "the poison member is evicted, not fatal");
        for i in 0..3 {
            assert!(env.s3().peek_committed("data", &format!("h{i}")).is_some());
        }
        assert_eq!(
            env.sqs().peek_depth(p3.wal_url()),
            1,
            "the poison message stays for redelivery/retention"
        );
    }

    #[test]
    fn newest_version_of_a_key_wins_within_one_transaction() {
        // A closure can carry a historic version of the closing file
        // alongside the version being closed (both under one key, both
        // paired with today's bytes). The serial commit path copied them
        // in closure order so the newest version defined the final
        // state; the parallel copy fan-out must preserve exactly that —
        // a read after commit sees the newest version's metadata, never
        // the historic version stamped over the newest bytes.
        let (_sim, env, p3) = setup();
        let blob = Blob::from("current-bytes");
        let old_id = PNodeId {
            uuid: Uuid(600),
            version: 1,
        };
        // Historic node: records describe OLD content, data is today's
        // bytes (what the fs cache still holds).
        let historic = FlushObject::file(
            FlushNode {
                id: old_id,
                kind: NodeKind::File,
                name: Some("/evolved".into()),
                records: vec![
                    ProvenanceRecord::new(old_id, Attr::Type, "file"),
                    ProvenanceRecord::new(old_id, Attr::DataHash, "00000000deadbeef"),
                ],
                data_hash: Some(0xdead_beef),
            },
            "evolved",
            blob.clone(),
        );
        let current = file_obj(600, 2, "evolved", "current-bytes");
        p3.flush(FlushBatch {
            objects: vec![historic, current],
        })
        .unwrap();
        assert_eq!(p3.commit_daemon().run_until_idle().unwrap(), 1);
        let r = p3.read("evolved").unwrap();
        assert_eq!(
            r.id,
            Some(PNodeId {
                uuid: Uuid(600),
                version: 2
            }),
            "the newest version's copy must define the final metadata"
        );
        assert_eq!(r.coupling, CouplingCheck::Coupled);
        assert_eq!(env.s3().peek_count("data", "tmp/"), 0, "both temps GCed");
    }

    #[test]
    fn group_packing_respects_limit_order_and_phases() {
        let item = |n: usize| PutItem {
            name: format!("i{n}"),
            attrs: vec![("a".into(), "v".into())],
            replace: false,
        };
        let base: Vec<PutItem> = (0..103).map(item).collect();
        let index: Vec<PutItem> = (1000..1007).map(item).collect();
        let plan = pack_group_writes(base.clone(), index.clone(), 25, 4);
        for chunk in plan.base_chunks.iter().chain(&plan.index_chunks) {
            assert!(chunk.len() <= 25 && !chunk.is_empty());
        }
        let flat_base: Vec<PutItem> = plan.base_chunks.concat();
        let flat_index: Vec<PutItem> = plan.index_chunks.concat();
        assert_eq!(flat_base, base, "base order preserved, nothing lost");
        assert_eq!(flat_index, index, "index order preserved");
        // 103 items over the 25 cap: minimum 5 chunks, i.e. full batches.
        assert_eq!(plan.base_chunks.len(), 5);
        assert_eq!(plan.items(), 110);
    }

    #[test]
    fn group_packing_splits_light_groups_for_parallelism() {
        let item = |n: usize| PutItem {
            name: format!("i{n}"),
            attrs: vec![("a".into(), "v".into())],
            replace: false,
        };
        // 8 items fit one batch, but 4 connections are available: split
        // evenly so the per-item database time shrinks by the fan-out.
        let plan = pack_group_writes((0..8).map(item).collect(), Vec::new(), 25, 4);
        assert_eq!(plan.base_chunks.len(), 4);
        assert!(plan.base_chunks.iter().all(|c| c.len() == 2));
        // Never more chunks than items.
        let tiny = pack_group_writes((0..2).map(item).collect(), Vec::new(), 25, 8);
        assert_eq!(tiny.base_chunks.len(), 2);
        assert!(pack_group_writes(Vec::new(), Vec::new(), 25, 4)
            .base_chunks
            .is_empty());
    }

    #[test]
    fn empty_flush_sends_header_only_transaction() {
        let (_sim, _env, p3) = setup();
        p3.flush(FlushBatch::default()).unwrap();
        let daemon = p3.commit_daemon();
        assert_eq!(daemon.run_until_idle().unwrap(), 1);
    }

    // ---- change feed -----------------------------------------------

    use crate::feed::CommitEvent;
    use cloudprov_cloud::{TenantId, DEFAULT_VISIBILITY_TIMEOUT};

    fn feed_cfg() -> ProtocolConfig {
        ProtocolConfig {
            feed: true,
            ..ProtocolConfig::default()
        }
    }

    fn collecting_sink() -> (crate::feed::CommitEventSink, Arc<Mutex<Vec<CommitEvent>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = events.clone();
        (Arc::new(move |e: CommitEvent| e2.lock().push(e)), events)
    }

    #[test]
    fn feed_publishes_one_event_per_commit_strictly_after_ack() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let tenant_env = env.for_tenant(TenantId(3));
        let p3 = P3::new(&tenant_env, feed_cfg(), "wal-feed");
        let proc_id = PNodeId::initial(Uuid(60));
        let proc = FlushObject::provenance_only(FlushNode {
            id: proc_id,
            kind: NodeKind::Process,
            name: Some("gen".into()),
            records: vec![
                ProvenanceRecord::new(proc_id, Attr::Type, "process"),
                ProvenanceRecord::new(proc_id, Attr::Name, "gen"),
            ],
            data_hash: None,
        });
        let mut file = file_obj(61, 1, "out", "x");
        file.node
            .records
            .push(ProvenanceRecord::new(file.node.id, Attr::Input, proc_id));
        p3.flush(FlushBatch {
            objects: vec![proc, file],
        })
        .unwrap();

        let daemon = p3.commit_daemon();
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = events.clone();
        let wal = p3.wal_url().to_string();
        let env2 = env.clone();
        daemon.set_event_sink(Arc::new(move |e: CommitEvent| {
            // Publish runs strictly after the group ack: by the time the
            // sink sees the event its WAL messages are gone.
            assert_eq!(env2.sqs().peek_depth(&wal), 0, "event before ack");
            e2.lock().push(e);
        }));
        daemon.run_until_idle().unwrap();

        let evs = events.lock();
        assert_eq!(evs.len(), 1, "one event per committed transaction");
        assert_eq!(evs[0].seq, 1);
        assert_eq!(evs[0].stream, "wal-feed");
        assert_eq!(evs[0].tenant, Some(TenantId(3)));
        assert!(evs[0].uuids.contains(&Uuid(60)));
        assert!(evs[0].uuids.contains(&Uuid(61)));
        assert_eq!(evs[0].programs, vec!["gen".to_string()]);
    }

    #[test]
    fn feed_crash_at_stage_redelivers_without_gap() {
        // The p3:notify:stage crash point: the daemon dies before the
        // event stages, so its WAL stays unacknowledged. A takeover
        // daemon recommits and the event arrives exactly once here
        // (nothing was staged), with a contiguous sequence.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, feed_cfg(), "wal-cr");
        p3.flush(FlushBatch {
            objects: vec![file_obj(70, 1, "out", "x")],
        })
        .unwrap();

        let crash_cfg = ProtocolConfig {
            step_hook: Some(kill_at_occurrence("p3:notify:stage", 1)),
            ..feed_cfg()
        };
        let a = CommitDaemon::new(&env, crash_cfg, p3.wal_url());
        assert!(a.poll_once().is_err(), "daemon A dies at the stage point");
        drop(a);

        sim.sleep(DEFAULT_VISIBILITY_TIMEOUT + Duration::from_secs(10));
        let b = CommitDaemon::new(&env, feed_cfg(), p3.wal_url());
        let (sink, events) = collecting_sink();
        b.set_event_sink(sink);
        b.run_until_idle().unwrap();
        assert_eq!(b.committed_transactions(), 1);
        let evs = events.lock();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].seq, 1, "sequence starts clean — no gap");
        assert!(env.s3().peek_committed("data", "out").is_some());
    }

    #[test]
    fn feed_crash_between_ack_and_publish_survives_failover() {
        // The p3:notify:publish crash point: the group is fully acked
        // and its events staged, but nothing was published. The staged
        // backlog must reach the takeover daemon's sink even though the
        // WAL is empty (at-least-once across failover).
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, feed_cfg(), "wal-fo");
        p3.flush(FlushBatch {
            objects: vec![file_obj(80, 1, "out", "x")],
        })
        .unwrap();

        let crash_cfg = ProtocolConfig {
            step_hook: Some(kill_at_occurrence("p3:notify:publish", 1)),
            ..feed_cfg()
        };
        let a = CommitDaemon::new(&env, crash_cfg, p3.wal_url());
        assert!(a.poll_once().is_err(), "daemon A dies before publishing");
        assert_eq!(
            env.sqs().peek_depth(p3.wal_url()),
            0,
            "the group was acked before the crash"
        );
        drop(a);

        let b = CommitDaemon::new(&env, feed_cfg(), p3.wal_url());
        let (sink, events) = collecting_sink();
        b.set_event_sink(sink);
        // B commits nothing — the WAL is empty — yet its idle poll
        // drains the predecessor's staged backlog.
        let o = b.poll_once().unwrap();
        assert_eq!(o.committed, 0);
        let evs = events.lock();
        assert_eq!(evs.len(), 1, "staged event survives the failover");
        assert_eq!(evs[0].seq, 1);
        assert!(evs[0].uuids.contains(&Uuid(80)));
    }

    #[test]
    fn feed_crash_before_watermark_duplicates_but_never_gaps() {
        // The p3:notify:wm crash point: the event published but the
        // watermark never advanced. The takeover daemon republishes —
        // consumers see the same sequence twice (allowed), never a hole.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p3 = P3::new(&env, feed_cfg(), "wal-wm");
        p3.flush(FlushBatch {
            objects: vec![file_obj(90, 1, "out", "x")],
        })
        .unwrap();

        let (sink, events) = collecting_sink();
        let crash_cfg = ProtocolConfig {
            step_hook: Some(kill_at_occurrence("p3:notify:wm", 1)),
            ..feed_cfg()
        };
        let a = CommitDaemon::new(&env, crash_cfg, p3.wal_url());
        a.set_event_sink(sink.clone());
        assert!(a.poll_once().is_err(), "daemon A dies before the watermark");
        drop(a);

        let b = CommitDaemon::new(&env, feed_cfg(), p3.wal_url());
        b.set_event_sink(sink);
        b.poll_once().unwrap();
        let evs = events.lock();
        assert_eq!(evs.len(), 2, "republished after the lost watermark");
        assert_eq!(evs[0].seq, evs[1].seq, "a duplicate, not a gap");
        assert_eq!(evs[0].txn, evs[1].txn);
    }

    #[test]
    fn wal_headers_parse_with_and_without_trailing_fields() {
        // The trailing header fields are self-describing, so pre-tenant
        // and pre-trace WAL messages (and any mix) all still parse.
        let uuid = format!("{}", Uuid(0xabc));
        let bare = format!("TXN\t{uuid}\t0\t2\nbody");
        let (txn, seq, total, tenant, ctx, rest) = parse_header(&bare).unwrap();
        assert_eq!((txn, seq, total), (Uuid(0xabc), 0, 2));
        assert_eq!((tenant, ctx), (None, None));
        assert_eq!(rest, "body");

        let tenant_only = format!("TXN\t{uuid}\t1\t2\t7\nbody");
        let (_, _, _, tenant, ctx, _) = parse_header(&tenant_only).unwrap();
        assert_eq!(tenant, Some(TenantId(7)));
        assert_eq!(ctx, None);

        let span = SpanContext {
            trace: 0xabc,
            span: 5,
        };
        let ctx_only = format!("TXN\t{uuid}\t0\t2\t{}\nbody", span.encode());
        let (_, _, _, tenant, ctx, _) = parse_header(&ctx_only).unwrap();
        assert_eq!(tenant, None);
        assert_eq!(ctx, Some(span));

        let both = format!("TXN\t{uuid}\t0\t2\t7\t{}\nbody", span.encode());
        let (_, _, _, tenant, ctx, _) = parse_header(&both).unwrap();
        assert_eq!(tenant, Some(TenantId(7)));
        assert_eq!(ctx, Some(span));

        // And the writer round-trips through the parser.
        let records = vec![ProvenanceRecord::new(
            PNodeId::initial(Uuid(0xabc)),
            Attr::Type,
            "file",
        )];
        let msgs = P3::build_messages(
            Uuid(0xabc),
            Some(TenantId(3)),
            Some(span),
            &[],
            &records,
            8192,
        );
        let (txn, _, _, tenant, ctx, _) = parse_header(&msgs[0]).unwrap();
        assert_eq!(txn, Uuid(0xabc));
        assert_eq!(tenant, Some(TenantId(3)));
        assert_eq!(ctx, Some(span));
    }

    #[test]
    fn trace_survives_a_mid_commit_steal() {
        // Daemon A picks the traced txn up and dies mid-commit (db
        // phase); after the visibility timeout a second daemon receives
        // the same WAL messages and recommits. The span context rides
        // the redelivered message, so the takeover still lands under
        // the original root: one connected tree, zero orphans, and the
        // root span's duration is the txn's true (steal-inflated)
        // commit latency.
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        env.tracer().enable(7);
        let p3 = P3::new(&env, ProtocolConfig::default(), "wal-steal-trace");
        p3.flush(FlushBatch {
            objects: vec![file_obj(600, 1, "stolen", "payload")],
        })
        .unwrap();

        let dying_cfg = ProtocolConfig {
            step_hook: Some(kill_at_occurrence("p3:commit:group:db", 1)),
            ..ProtocolConfig::default()
        };
        let dying = CommitDaemon::new(&env, dying_cfg, "sqs://wal-steal-trace");
        assert!(dying.run_until_idle().is_err(), "daemon A dies mid-commit");
        sim.sleep(cloudprov_cloud::DEFAULT_VISIBILITY_TIMEOUT + Duration::from_secs(1));

        let recovery = CommitDaemon::new(&env, ProtocolConfig::default(), "sqs://wal-steal-trace");
        let committed_ids = Arc::new(Mutex::new(Vec::<Uuid>::new()));
        recovery.set_commit_listener({
            let ids = committed_ids.clone();
            Arc::new(move |txn| ids.lock().push(txn))
        });
        recovery.run_until_idle().unwrap();
        let ids = committed_ids.lock().clone();
        assert_eq!(ids.len(), 1, "the stolen txn commits exactly once");
        let txn = ids[0];

        let tracer = env.tracer();
        let st = tracer.stats();
        assert_eq!(st.orphans, 0, "the steal must not sever the tree: {st:?}");
        assert_eq!(st.open_roots, 0, "the stolen txn's root closed");
        let (logged, committed) = tracer.root_interval(txn.0).expect("root recorded");
        assert!(committed > logged);
        // Both attempts left phase spans on the SAME trace: daemon A's
        // aborted db phase plus daemon B's completed one.
        let db_spans = tracer
            .spans()
            .iter()
            .filter(|s| s.trace == txn.0 && s.kind == "db")
            .count();
        assert!(
            db_spans >= 2,
            "both daemons' db phases on one trace, got {db_spans}"
        );
        // The critical path still telescopes to the root window, with
        // the visibility-timeout wait showing up inside the breakdown
        // rather than leaking out of it.
        let b = tracer.critical_path(txn.0).expect("committed txn");
        assert_eq!(
            b.commit_sum(),
            committed.saturating_duration_since(logged),
            "breakdown must reconcile with the root window: {b:?}"
        );
        assert!(
            b.commit_sum() >= cloudprov_cloud::DEFAULT_VISIBILITY_TIMEOUT,
            "the steal's redelivery wait is part of the txn's latency"
        );
    }

    #[test]
    fn feed_disabled_stages_nothing() {
        let (_sim, env, p3) = setup();
        p3.flush(FlushBatch {
            objects: vec![file_obj(95, 1, "out", "x")],
        })
        .unwrap();
        let daemon = p3.commit_daemon();
        let (sink, events) = collecting_sink();
        daemon.set_event_sink(sink);
        daemon.run_until_idle().unwrap();
        assert!(events.lock().is_empty(), "no feed traffic unless enabled");
        assert_eq!(
            env.sdb()
                .peek_item_count(&crate::feed::feed_domain("provenance")),
            0
        );
    }
}
