//! The commit-time ancestry index.
//!
//! The SimpleDB layout indexes every *attribute*, so a forward lookup
//! ("what does F depend on?") is one SELECT — but the §5.3 lineage
//! queries walk the graph **backwards** (Q.3 "files output by program",
//! Q.4 "descendants of program") and had to re-discover reverse edges by
//! issuing `input in (...)` SELECTs per frontier round against the full
//! record log. Following the cloud-aware-provenance line of work, this
//! module treats the queryable lineage graph itself as a first-class
//! artifact: P3's commit daemon maintains, in the same commit step that
//! writes provenance items, a lean *ancestry index* in a sibling domain
//! (`{domain}_idx`) holding nothing but the graph structure:
//!
//! * **Reverse-edge items** `rev_{ancestor}~{b}` — one item per
//!   (ancestor node, bucket): multi-valued attribute `out` lists the
//!   nodes carrying an `input` edge to the ancestor, and `file` repeats
//!   the subset of those that are files (Q.3's `type = 'file'` filter,
//!   resolved at commit time). Buckets spread one ancestor's fan-in over
//!   [`REV_BUCKETS`] items so a hub node cannot silently overflow the
//!   service's 256-attribute item limit.
//! * **Program items** `name_{program}~{b}` — multi-valued attribute
//!   `proc` lists the process nodes named `program` (Q.3/Q.4's seed
//!   lookup).
//!
//! Every update is derived **purely from the records of one committed
//! transaction** — a dependent's `type` travels with its `input` edges,
//! and a process's `name` travels with its `type` — so index writes are
//! order-free across transactions, idempotent under redelivery
//! (SimpleDB deduplicates exact attribute pairs), and crash-safe: the
//! daemon writes the group's base items, then the index
//! (`p3:commit:group:index`), then acknowledges the WAL, so a crash
//! between base and index write leaves unacknowledged transactions
//! whose recommit rewrites both.
//!
//! [`audit_index`] is the machine-checked invariant: rebuild the
//! expected index from the committed base records and diff it against
//! the stored index, attribute pair by attribute pair. The chaos
//! explorer runs it after every crash/recovery schedule.

use std::collections::BTreeMap;

use cloudprov_cloud::{Attributes, CloudEnv, PutItem, ATTRIBUTE_LIMIT};
use cloudprov_pass::{Attr, NodeKind, PNodeId, ProvenanceRecord};

use crate::layout::Layout;
use crate::protocol::item_to_records;

/// Suffix appended to the provenance domain to name the index domain.
pub const INDEX_SUFFIX: &str = "_idx";

/// Buckets one ancestor's reverse edges are spread over (fan-in beyond
/// `REV_BUCKETS × 256` attribute pairs would overflow the item limit; 4
/// buckets give headroom of ~1000 direct dependents per node, far above
/// any workload here — [`audit_index`] catches it if one ever exceeds
/// that).
pub const REV_BUCKETS: u64 = 4;

/// Attribute listing a node's direct dependents (reverse `input` edges).
pub const ATTR_OUT: &str = "out";
/// Attribute listing the *file* subset of a node's direct dependents.
pub const ATTR_FILE: &str = "file";
/// Attribute listing the process nodes carrying a program name.
pub const ATTR_PROC: &str = "proc";

/// Item-name prefix of reverse-edge items.
pub const REV_PREFIX: &str = "rev_";
/// Item-name prefix of program items.
pub const NAME_PREFIX: &str = "name_";

/// Name of the ancestry-index domain for a provenance domain.
pub fn index_domain(domain: &str) -> String {
    format!("{domain}{INDEX_SUFFIX}")
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn bucket_of(dependent: PNodeId) -> u64 {
    fnv64(dependent.to_string().as_bytes()) % REV_BUCKETS
}

/// Item name of the reverse-edge bucket holding `dependent`'s edge to
/// `ancestor`.
pub fn rev_item_name(ancestor: PNodeId, dependent: PNodeId) -> String {
    format!("{REV_PREFIX}{ancestor}~{}", bucket_of(dependent))
}

/// The ancestor a reverse-edge item name refers to.
pub fn parse_rev_item(name: &str) -> Option<PNodeId> {
    let rest = name.strip_prefix(REV_PREFIX)?;
    let (id, _bucket) = rest.rsplit_once('~')?;
    id.parse().ok()
}

/// Item name of the program bucket holding process `proc` under
/// `program`.
pub fn name_item_name(program: &str, proc: PNodeId) -> String {
    format!("{NAME_PREFIX}{program}~{}", bucket_of(proc))
}

/// The program a program item name refers to.
pub fn parse_name_item(name: &str) -> Option<&str> {
    let rest = name.strip_prefix(NAME_PREFIX)?;
    let (program, _bucket) = rest.rsplit_once('~')?;
    Some(program)
}

/// Derives the index writes for one committed transaction's records.
///
/// Pure function: callers (the commit daemon, the audit) feed it record
/// sets and get `PutItem`s for the index domain. Edges considered are
/// `input` cross-references — the exact edge set the SELECT
/// frontier-expansion path expands — and a dependent is `file`-marked
/// when its own `type` record rides in the same record set (which it
/// always does: a version's `type` is stamped when the version is
/// created, before any of its edges).
pub fn index_updates(records: &[ProvenanceRecord]) -> Vec<PutItem> {
    let mut kinds: BTreeMap<PNodeId, NodeKind> = BTreeMap::new();
    let mut names: BTreeMap<PNodeId, &str> = BTreeMap::new();
    for r in records {
        match (&r.attr, &r.value) {
            (Attr::Type, v) => {
                let k = match v.to_text().as_str() {
                    "process" => NodeKind::Process,
                    "pipe" => NodeKind::Pipe,
                    _ => NodeKind::File,
                };
                kinds.insert(r.subject, k);
            }
            // Names above the 1 KB attribute limit are spilled to S3 by
            // the base-item path and stored as `@s3:` pointers — neither
            // form is a usable program seed, and indexing either would
            // make the commit-time writer (which sees the raw record)
            // and the audit (which sees the spilled base item) disagree.
            // Both forms are skipped.
            (Attr::Name, cloudprov_pass::AttrValue::Text(n))
                if n.len() <= ATTRIBUTE_LIMIT && !n.starts_with("@s3:") =>
            {
                names.insert(r.subject, n.as_str());
            }
            _ => {}
        }
    }
    let mut items: BTreeMap<String, Attributes> = BTreeMap::new();
    for r in records {
        if r.attr != Attr::Input {
            continue;
        }
        let Some(ancestor) = r.value.as_xref() else {
            continue;
        };
        let dependent = r.subject;
        let attrs = items.entry(rev_item_name(ancestor, dependent)).or_default();
        let dep = dependent.to_string();
        attrs.push((ATTR_OUT.to_string(), dep.clone()));
        if kinds.get(&dependent) == Some(&NodeKind::File) {
            attrs.push((ATTR_FILE.to_string(), dep));
        }
    }
    for (node, kind) in &kinds {
        if *kind != NodeKind::Process {
            continue;
        }
        let Some(name) = names.get(node) else {
            continue;
        };
        items
            .entry(name_item_name(name, *node))
            .or_default()
            .push((ATTR_PROC.to_string(), node.to_string()));
    }
    items
        .into_iter()
        .map(|(name, attrs)| PutItem {
            name,
            attrs,
            replace: false,
        })
        .collect()
}

/// Coalesces index writes from several transactions of one commit group.
///
/// Two transactions touching the same ancestor (or the same program
/// name) in the same bucket produce `PutItem`s with the same item name;
/// writing them as one merged item is byte-equivalent in the store
/// (SimpleDB accumulates multi-valued attributes and deduplicates exact
/// `(name, value)` repeats) but saves the per-item box time of writing
/// the shared rows twice. Order-free and idempotent like the underlying
/// updates, so recommitting a partially merged group converges.
pub fn merge_index_items(items: Vec<PutItem>) -> Vec<PutItem> {
    let mut merged: BTreeMap<String, Attributes> = BTreeMap::new();
    for item in items {
        let attrs = merged.entry(item.name).or_default();
        for (a, v) in item.attrs {
            if !attrs.iter().any(|(ea, ev)| *ea == a && *ev == v) {
                attrs.push((a, v));
            }
        }
    }
    merged
        .into_iter()
        .map(|(name, attrs)| PutItem {
            name,
            attrs,
            replace: false,
        })
        .collect()
}

/// Outcome of an index ↔ base-record consistency audit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexAudit {
    /// `(item, attr, value)` triples derivable from the base records but
    /// absent from the index — a commit that wrote provenance without its
    /// index entries.
    pub missing: Vec<(String, String, String)>,
    /// Triples present in the index but not derivable from the base —
    /// phantom entries describing provenance that never committed.
    pub unexpected: Vec<(String, String, String)>,
    /// Attribute pairs the stored index holds.
    pub entries: usize,
}

impl IndexAudit {
    /// True when the index and the base records agree exactly.
    pub fn consistent(&self) -> bool {
        self.missing.is_empty() && self.unexpected.is_empty()
    }

    /// Total disagreements (the chaos explorer's violation count).
    pub fn inconsistencies(&self) -> usize {
        self.missing.len() + self.unexpected.len()
    }
}

/// Diffs the stored ancestry index against what the committed base
/// records imply. Instrumentation-path only (peeks bypass metering and
/// consistency): this is the invariant checker, not a query path.
pub fn audit_index(env: &CloudEnv, layout: &Layout) -> IndexAudit {
    let base: Vec<ProvenanceRecord> = env
        .sdb()
        .peek_items(&layout.domain)
        .iter()
        .flat_map(|(name, attrs)| item_to_records(name, attrs))
        .collect();
    let mut expected: BTreeMap<(String, String, String), ()> = BTreeMap::new();
    for item in index_updates(&base) {
        for (a, v) in item.attrs {
            expected.insert((item.name.clone(), a, v), ());
        }
    }
    let mut audit = IndexAudit::default();
    let mut actual: BTreeMap<(String, String, String), ()> = BTreeMap::new();
    for (name, attrs) in env.sdb().peek_items(&index_domain(&layout.domain)) {
        for (a, v) in attrs {
            actual.insert((name.clone(), a, v), ());
        }
    }
    audit.entries = actual.len();
    for key in expected.keys() {
        if !actual.contains_key(key) {
            audit.missing.push(key.clone());
        }
    }
    for key in actual.keys() {
        if !expected.contains_key(key) {
            audit.unexpected.push(key.clone());
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_pass::Uuid;

    fn nid(n: u128, v: u32) -> PNodeId {
        PNodeId {
            uuid: Uuid(n),
            version: v,
        }
    }

    /// proc(2, "gen") reads file(1); file(3) written by proc(2).
    fn txn_records() -> Vec<ProvenanceRecord> {
        vec![
            ProvenanceRecord::new(nid(1, 1), Attr::Type, "file"),
            ProvenanceRecord::new(nid(2, 1), Attr::Type, "process"),
            ProvenanceRecord::new(nid(2, 1), Attr::Name, "gen"),
            ProvenanceRecord::new(nid(2, 1), Attr::Input, nid(1, 1)),
            ProvenanceRecord::new(nid(3, 1), Attr::Type, "file"),
            ProvenanceRecord::new(nid(3, 1), Attr::Name, "/out"),
            ProvenanceRecord::new(nid(3, 1), Attr::Input, nid(2, 1)),
        ]
    }

    #[test]
    fn updates_cover_reverse_edges_and_program_seeds() {
        let items = index_updates(&txn_records());
        // rev item for file(1) lists proc(2) as a non-file dependent.
        let rev1 = items
            .iter()
            .find(|i| parse_rev_item(&i.name) == Some(nid(1, 1)))
            .expect("rev item for the read file");
        assert!(rev1
            .attrs
            .contains(&(ATTR_OUT.into(), nid(2, 1).to_string())));
        assert!(!rev1.attrs.iter().any(|(a, _)| a == ATTR_FILE));
        // rev item for proc(2) lists file(3) as a file dependent.
        let rev2 = items
            .iter()
            .find(|i| parse_rev_item(&i.name) == Some(nid(2, 1)))
            .expect("rev item for the process");
        assert!(rev2
            .attrs
            .contains(&(ATTR_FILE.into(), nid(3, 1).to_string())));
        // name item seeds Q.3 for "gen".
        let name = items
            .iter()
            .find(|i| parse_name_item(&i.name) == Some("gen"))
            .expect("program item");
        assert!(name
            .attrs
            .contains(&(ATTR_PROC.into(), nid(2, 1).to_string())));
        // Files with names do NOT get program items.
        assert!(!items
            .iter()
            .any(|i| parse_name_item(&i.name) == Some("/out")));
    }

    #[test]
    fn updates_are_a_pure_function() {
        assert_eq!(index_updates(&txn_records()), index_updates(&txn_records()));
        assert!(index_updates(&[]).is_empty());
    }

    #[test]
    fn oversized_and_spilled_names_are_never_seeds() {
        // The raw record (what the commit daemon sees) carries the huge
        // name; the base item (what the audit rebuilds from) carries its
        // spill pointer. Both derivations must agree: no seed either way.
        let p = nid(5, 1);
        let huge = "n".repeat(2048);
        let raw = vec![
            ProvenanceRecord::new(p, Attr::Type, "process"),
            ProvenanceRecord::new(p, Attr::Name, huge),
        ];
        let spilled = vec![
            ProvenanceRecord::new(p, Attr::Type, "process"),
            ProvenanceRecord::new(p, Attr::Name, "@s3:prov/xattr/spilled"),
        ];
        assert!(index_updates(&raw).is_empty());
        assert!(index_updates(&spilled).is_empty());
    }

    #[test]
    fn item_names_roundtrip() {
        let a = nid(7, 3);
        let d = nid(9, 1);
        assert_eq!(parse_rev_item(&rev_item_name(a, d)), Some(a));
        assert_eq!(
            parse_name_item(&name_item_name("bl~ast", d)),
            Some("bl~ast")
        );
        assert_eq!(parse_rev_item("name_x~0"), None);
        assert_eq!(parse_name_item("rev_x~0"), None);
    }

    #[test]
    fn cross_txn_merge_coalesces_shared_items_without_changing_state() {
        // Two transactions whose dependents share an ancestor bucket
        // merge into one item; distinct pairs survive, exact repeats
        // (a redelivered transaction in the same group) deduplicate.
        let a_txn = txn_records();
        let mut b_txn = txn_records();
        b_txn.push(ProvenanceRecord::new(nid(4, 1), Attr::Type, "file"));
        b_txn.push(ProvenanceRecord::new(nid(4, 1), Attr::Input, nid(2, 1)));
        let separate: Vec<PutItem> = index_updates(&a_txn)
            .into_iter()
            .chain(index_updates(&b_txn))
            .collect();
        let merged = merge_index_items(separate.clone());
        assert!(merged.len() < separate.len(), "shared items must coalesce");
        // Pair-for-pair the merged plan equals the accumulated effect of
        // the separate writes (SimpleDB dedupes exact repeats anyway).
        let flatten = |items: &[PutItem]| {
            let mut set = std::collections::BTreeSet::new();
            for i in items {
                for (a, v) in &i.attrs {
                    set.insert((i.name.clone(), a.clone(), v.clone()));
                }
            }
            set
        };
        assert_eq!(flatten(&merged), flatten(&separate));
        // Idempotent: merging a merge changes nothing.
        assert_eq!(merge_index_items(merged.clone()), merged);
    }

    #[test]
    fn buckets_spread_fan_in() {
        let hub = nid(42, 1);
        let names: std::collections::BTreeSet<String> = (0..64u128)
            .map(|i| rev_item_name(hub, nid(100 + i, 1)))
            .collect();
        assert!(names.len() > 1, "fan-in must spread over buckets");
        assert!(names.len() <= REV_BUCKETS as usize);
    }
}
