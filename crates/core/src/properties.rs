//! Executable checkers for the four provenance-system properties of §3.
//!
//! These turn the paper's Table 1 (which protocol satisfies which
//! property) from prose into assertions:
//!
//! * **Provenance data-coupling** — an object and its provenance match.
//!   Checked per read via [`CouplingCheck`](crate::CouplingCheck); the
//!   harness aggregates verdicts under crash injection.
//! * **Multi-object causal ordering** — every ancestor referenced by
//!   stored provenance itself exists in the store (no dangling pointers).
//!   [`check_causal_ordering`] scans a [`ProvenanceStore`] for violations.
//! * **Data-independent persistence** — provenance outlives its object.
//!   [`check_persistence`] deletes the data and confirms the provenance
//!   remains reachable.
//! * **Efficient query** — a capability of the store layout
//!   ([`StorageProtocol::supports_efficient_query`]); quantified by the
//!   Table 5 benchmarks.

use std::collections::BTreeSet;

use cloudprov_cloud::CloudEnv;
use cloudprov_pass::wire;
use cloudprov_pass::{PNodeId, ProvenanceRecord};

use crate::error::Result;
use crate::protocol::{item_to_records, ProvenanceStore, StorageProtocol};

/// Loads every provenance record from a store, through the public API.
///
/// For S3 stores this is the Q.1-style full scan (list + GET each object);
/// for database stores a paginated `SELECT *`.
///
/// # Errors
///
/// Propagates cloud errors (including visibility misses under eventual
/// consistency — call after quiescence for a stable view).
pub fn load_all_records(env: &CloudEnv, store: &ProvenanceStore) -> Result<Vec<ProvenanceRecord>> {
    match store {
        ProvenanceStore::S3Objects { bucket, prefix } => {
            let keys = env.s3().list_all(bucket, prefix)?;
            let mut out = Vec::new();
            for k in keys {
                let obj = env.s3().get(bucket, &k.key)?;
                out.extend(wire::decode(
                    obj.blob.as_inline().expect("provenance objects are inline"),
                )?);
            }
            Ok(out)
        }
        ProvenanceStore::Database { domain, .. } => {
            let items = env.sdb().select_all(&format!("select * from {domain}"))?;
            Ok(items
                .iter()
                .flat_map(|i| item_to_records(&i.name, &i.attrs))
                .collect())
        }
    }
}

/// The newest version of `uuid` that has provenance in the store, via the
/// public API. The bidirectional coupling check compares this against the
/// version recorded in the data object's metadata: provenance that is
/// *newer* than the data describes data that never arrived — the "old data
/// based on new provenance" hazard of §3.
pub fn latest_stored_version(
    env: &CloudEnv,
    store: &ProvenanceStore,
    uuid: cloudprov_pass::Uuid,
) -> Result<Option<u32>> {
    let records = load_all_records(env, store)?;
    Ok(records
        .iter()
        .filter(|r| r.subject.uuid == uuid)
        .map(|r| r.subject.version)
        .max())
}

/// Result of a causal-ordering scan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalReport {
    /// Node versions that have stored provenance.
    pub present: usize,
    /// Dangling edges: `(subject, missing ancestor)` pairs where the
    /// ancestor has no stored provenance — exactly the violation §3
    /// describes ("dangling pointers in the DAG").
    pub dangling: Vec<(PNodeId, PNodeId)>,
}

impl CausalReport {
    /// True when the store satisfies multi-object causal ordering.
    pub fn holds(&self) -> bool {
        self.dangling.is_empty()
    }
}

/// Pure check over a record set: every edge target must itself appear as a
/// subject.
pub fn causal_report(records: &[ProvenanceRecord]) -> CausalReport {
    let present: BTreeSet<PNodeId> = records.iter().map(|r| r.subject).collect();
    let mut dangling = Vec::new();
    for r in records {
        if let Some((from, to)) = r.edge() {
            if !present.contains(&to) {
                dangling.push((from, to));
            }
        }
    }
    CausalReport {
        present: present.len(),
        dangling,
    }
}

/// Scans a provenance store for causal-ordering violations.
///
/// # Errors
///
/// Propagates cloud errors from the scan.
pub fn check_causal_ordering(env: &CloudEnv, store: &ProvenanceStore) -> Result<CausalReport> {
    Ok(causal_report(&load_all_records(env, store)?))
}

/// Verifies data-independent persistence: deletes `key` through the
/// protocol and reports whether provenance for `id` is still loadable.
///
/// # Errors
///
/// Propagates cloud errors.
pub fn check_persistence(
    env: &CloudEnv,
    protocol: &dyn StorageProtocol,
    key: &str,
    id: PNodeId,
) -> Result<bool> {
    protocol.delete(key)?;
    let Some(store) = protocol.provenance_store() else {
        return Ok(false);
    };
    let records = load_all_records(env, &store)?;
    Ok(records.iter().any(|r| r.subject == id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_pass::{Attr, Uuid};

    fn nid(n: u128, v: u32) -> PNodeId {
        PNodeId {
            uuid: Uuid(n),
            version: v,
        }
    }

    #[test]
    fn causal_report_flags_dangling_edges() {
        let records = vec![
            ProvenanceRecord::new(nid(1, 1), Attr::Type, "file"),
            ProvenanceRecord::new(nid(1, 1), Attr::Input, nid(2, 1)), // 2_1 missing
        ];
        let report = causal_report(&records);
        assert!(!report.holds());
        assert_eq!(report.dangling, vec![(nid(1, 1), nid(2, 1))]);
    }

    #[test]
    fn causal_report_passes_complete_closures() {
        let records = vec![
            ProvenanceRecord::new(nid(2, 1), Attr::Type, "process"),
            ProvenanceRecord::new(nid(1, 1), Attr::Type, "file"),
            ProvenanceRecord::new(nid(1, 1), Attr::Input, nid(2, 1)),
        ];
        assert!(causal_report(&records).holds());
    }

    #[test]
    fn empty_store_trivially_holds() {
        let report = causal_report(&[]);
        assert!(report.holds());
        assert_eq!(report.present, 0);
    }
}
