//! The commit-side half of the **live provenance change feed**: compact
//! commit events, durably staged next to the provenance they describe and
//! published strictly after the WAL acknowledgement.
//!
//! The paper's P3 commits asynchronously — a client learns its data is
//! provenance-coupled only by polling a read. The feed closes that gap:
//! every committed transaction produces one [`CommitEvent`] naming the
//! uuids and program names it touched, and downstream consumers (the
//! subscription registry in `cloudprov-feed`, the query engine's
//! invalidation hook) receive the events **at least once**, in
//! per-stream sequence order, with duplicates allowed and gaps forbidden
//! — across daemon crashes and lease failover.
//!
//! The delivery guarantee rests on SimpleDB staging ordered against the
//! WAL ack:
//!
//! 1. **Stage** (`p3:notify:stage`) — before any WAL receipt of the group
//!    is acknowledged, the group's events are written to the feed domain
//!    under monotonically increasing per-stream sequence numbers. A crash
//!    here leaves the WAL unacknowledged: the transactions redeliver and
//!    restage under fresh sequence numbers (a duplicate event per
//!    transaction, never a gap).
//! 2. **Ack** — the group's WAL receipts acknowledge (existing phase 5).
//! 3. **Publish** (`p3:notify:publish`) — every staged-but-unpublished
//!    event (anything above the stream's watermark, including events a
//!    crashed predecessor staged) flows to the installed sink in sequence
//!    order.
//! 4. **Watermark** (`p3:notify:wm`) — the stream's watermark item
//!    advances. A crash between publish and watermark republishes on the
//!    next flush: duplicates, not losses.
//!
//! A daemon taking over a stream (fleet lease steal, chaos kill) recovers
//! the next sequence number and the pending backlog from the feed domain
//! on first use, so at-least-once delivery survives failover.

use std::sync::Arc;

use parking_lot::Mutex;

use cloudprov_cloud::{
    quote_like_prefix, Actor, CloudEnv, Database, PutItem, TenantId, BATCH_LIMIT,
};
use cloudprov_pass::{Attr, NodeKind, ProvenanceRecord, Uuid};

use crate::error::Result;
use crate::protocol::{retry, ProtocolConfig};

/// One committed transaction, as seen by feed consumers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitEvent {
    /// The WAL stream (shard queue name) the transaction committed from.
    pub stream: String,
    /// Per-stream sequence number. Consumers may see the same sequence
    /// twice (crash-replay duplicates) but never a hole.
    pub seq: u64,
    /// The committed transaction.
    pub txn: Uuid,
    /// Tenant that logged the transaction, when the client ran under a
    /// tenant-attributed environment.
    pub tenant: Option<TenantId>,
    /// Distinct object uuids whose provenance the transaction touched.
    pub uuids: Vec<Uuid>,
    /// Program names of process nodes the transaction recorded.
    pub programs: Vec<String>,
}

/// Callback receiving every published [`CommitEvent`]. Installed on a
/// commit daemon via `CommitDaemon::set_event_sink`; the subscription
/// registry and the fleet pool provide implementations.
pub type CommitEventSink = Arc<dyn Fn(CommitEvent) + Send + Sync>;

/// Name of the feed-staging domain for a provenance domain.
pub fn feed_domain(domain: &str) -> String {
    format!("feed_{domain}")
}

/// Item-name prefix of staged events.
const EVT_PREFIX: &str = "evt_";
/// Item-name prefix of per-stream watermark items.
const WM_PREFIX: &str = "wm_";

/// Item name of the staged event `seq` of `stream`. The zero-padded
/// sequence keeps lexicographic item order equal to numeric order, and
/// the transaction id suffix keeps restaged duplicates (same transaction,
/// fresh sequence after a crash) from colliding.
fn event_item_name(stream: &str, seq: u64, txn: Uuid) -> String {
    format!("{EVT_PREFIX}{stream}~{seq:012}~{txn}")
}

/// Extracts the uuids and program names a record set touches — the same
/// name rules as the ancestry index's program seeds (plain text, within
/// the attribute limit, not a spill pointer).
///
/// Touched uuids cover both record subjects and `Input` cross-reference
/// targets: the ancestry index keys its reverse-edge items by the
/// *ancestor* (the xref target), so a commit changes `rev_` pages for
/// nodes that never appear as a subject in the transaction. Consumers
/// that invalidate by uuid (the read-tier ancestry cache) rely on the
/// event naming every node whose index pages the commit may have grown.
pub fn extract_touches(records: &[ProvenanceRecord]) -> (Vec<Uuid>, Vec<String>) {
    let mut uuids: Vec<Uuid> = Vec::new();
    let mut programs: Vec<String> = Vec::new();
    let mut kinds: std::collections::BTreeMap<Uuid, NodeKind> = std::collections::BTreeMap::new();
    for r in records {
        if !uuids.contains(&r.subject.uuid) {
            uuids.push(r.subject.uuid);
        }
        if r.attr == Attr::Input {
            if let Some(target) = r.value.as_xref() {
                if !uuids.contains(&target.uuid) {
                    uuids.push(target.uuid);
                }
            }
        }
        if r.attr == Attr::Type {
            let k = match r.value.to_text().as_str() {
                "process" => NodeKind::Process,
                "pipe" => NodeKind::Pipe,
                _ => NodeKind::File,
            };
            kinds.insert(r.subject.uuid, k);
        }
    }
    for r in records {
        if r.attr != Attr::Name || kinds.get(&r.subject.uuid) != Some(&NodeKind::Process) {
            continue;
        }
        let n = r.value.to_text();
        if n.len() <= cloudprov_cloud::ATTRIBUTE_LIMIT
            && !n.starts_with("@s3:")
            && !programs.contains(&n)
        {
            programs.push(n);
        }
    }
    (uuids, programs)
}

/// What the daemon stages for one committed group member.
#[derive(Clone, Debug)]
pub struct StagedTouches {
    /// The committed transaction.
    pub txn: Uuid,
    /// Tenant from the WAL header, if any.
    pub tenant: Option<TenantId>,
    /// Touched object uuids.
    pub uuids: Vec<Uuid>,
    /// Touched program names.
    pub programs: Vec<String>,
}

struct WriterState {
    /// Next sequence number to allocate.
    next_seq: u64,
    /// Highest published sequence (the durable watermark at recovery,
    /// advanced in memory as this daemon publishes).
    watermark: u64,
    /// Events a crashed predecessor staged but never published, in
    /// sequence order. Drained into the sink on the next flush.
    pending: Vec<CommitEvent>,
}

/// Stages and publishes [`CommitEvent`]s for one WAL stream.
///
/// Owned by a `CommitDaemon`; every SimpleDB call runs as the
/// [`Actor::CommitDaemon`] so feed upkeep is priced as daemon traffic.
pub struct FeedWriter {
    env: CloudEnv,
    config: ProtocolConfig,
    stream: String,
    state: Mutex<Option<WriterState>>,
}

impl std::fmt::Debug for FeedWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedWriter")
            .field("stream", &self.stream)
            .finish()
    }
}

impl FeedWriter {
    /// Creates the writer for `stream` (the shard queue name) and
    /// provisions the feed domain (idempotent, unmetered).
    pub fn new(env: &CloudEnv, config: ProtocolConfig, stream: &str) -> FeedWriter {
        env.sdb().create_domain(&feed_domain(&config.layout.domain));
        FeedWriter {
            env: env.clone(),
            config,
            stream: stream.to_string(),
            state: Mutex::new(None),
        }
    }

    /// The stream this writer stages for.
    pub fn stream(&self) -> &str {
        &self.stream
    }

    fn sdb(&self) -> Database {
        self.env.sdb().with_actor(Actor::CommitDaemon)
    }

    /// Recovers `(next_seq, watermark, pending)` from the feed domain:
    /// one scan of the stream's staged events plus the watermark item.
    /// Runs once per writer; a takeover daemon pays this on its first
    /// group (or idle flush) and inherits the predecessor's backlog.
    fn recover(&self) -> Result<WriterState> {
        let sdb = self.sdb();
        let domain = feed_domain(&self.config.layout.domain);
        let wm_item = format!("{WM_PREFIX}{}", self.stream);
        let wm_attrs = retry(self.env.sim(), self.config.retries, || {
            sdb.get_attributes(&domain, &wm_item)
        })?;
        let watermark: u64 = wm_attrs
            .iter()
            .find(|(k, _)| k == "seq")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let prefix = format!("{EVT_PREFIX}{}~", self.stream);
        let expr = format!(
            "select * from {domain} where itemName() like {}",
            quote_like_prefix(&prefix, "%")
        );
        let staged = retry(self.env.sim(), self.config.retries, || {
            sdb.select_all(&expr)
        })?;
        let mut max_seq = watermark;
        let mut pending: Vec<CommitEvent> = Vec::new();
        for item in staged {
            let Some(rest) = item.name.strip_prefix(&prefix) else {
                continue;
            };
            let Some((seq_txt, txn_txt)) = rest.split_once('~') else {
                continue;
            };
            let (Ok(seq), Ok(txn)) = (seq_txt.parse::<u64>(), txn_txt.parse::<Uuid>()) else {
                continue;
            };
            max_seq = max_seq.max(seq);
            if seq <= watermark {
                continue;
            }
            let mut ev = CommitEvent {
                stream: self.stream.clone(),
                seq,
                txn,
                tenant: None,
                uuids: Vec::new(),
                programs: Vec::new(),
            };
            for (k, v) in &item.attrs {
                match k.as_str() {
                    "tenant" => ev.tenant = v.parse().ok().map(TenantId),
                    "uuid" => {
                        if let Ok(u) = v.parse() {
                            ev.uuids.push(u);
                        }
                    }
                    "prog" => ev.programs.push(v.clone()),
                    _ => {}
                }
            }
            pending.push(ev);
        }
        pending.sort_by_key(|e| e.seq);
        Ok(WriterState {
            next_seq: max_seq + 1,
            watermark,
            pending,
        })
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut WriterState) -> Result<R>) -> Result<R> {
        let mut guard = self.state.lock();
        if guard.is_none() {
            *guard = Some(self.recover()?);
        }
        f(guard.as_mut().expect("state recovered above"))
    }

    /// Durably stages one group's events under fresh sequence numbers.
    /// Must run **before** the group's WAL acknowledgement (crash point
    /// `p3:notify:stage`): a crash after staging redelivers and restages
    /// the transactions as duplicates, never losing them.
    pub fn stage(&self, touches: &[StagedTouches]) -> Result<Vec<CommitEvent>> {
        if touches.is_empty() {
            return Ok(Vec::new());
        }
        self.with_state(|st| {
            let domain = feed_domain(&self.config.layout.domain);
            let mut events = Vec::with_capacity(touches.len());
            let mut items = Vec::with_capacity(touches.len());
            for t in touches {
                let seq = st.next_seq;
                st.next_seq += 1;
                let mut attrs: Vec<(String, String)> = vec![("txn".into(), t.txn.to_string())];
                if let Some(tenant) = t.tenant {
                    attrs.push(("tenant".into(), tenant.0.to_string()));
                }
                for u in &t.uuids {
                    attrs.push(("uuid".into(), u.to_string()));
                }
                for p in &t.programs {
                    attrs.push(("prog".into(), p.clone()));
                }
                items.push(PutItem {
                    name: event_item_name(&self.stream, seq, t.txn),
                    attrs,
                    replace: false,
                });
                events.push(CommitEvent {
                    stream: self.stream.clone(),
                    seq,
                    txn: t.txn,
                    tenant: t.tenant,
                    uuids: t.uuids.clone(),
                    programs: t.programs.clone(),
                });
            }
            let sdb = self.sdb();
            for chunk in items.chunks(BATCH_LIMIT) {
                self.config.step("p3:notify:stage")?;
                retry(self.env.sim(), self.config.retries, || {
                    sdb.batch_put_attributes(&domain, chunk.to_vec())
                })?;
            }
            st.pending.extend(events.iter().cloned());
            Ok(events)
        })
    }

    /// Publishes every staged-but-unpublished event to `sink` in
    /// sequence order, then advances the durable watermark. Must run
    /// **after** the group's WAL acknowledgement. Crash points:
    /// `p3:notify:publish` before the sink sees anything,
    /// `p3:notify:wm` between publish and the watermark write (a crash
    /// there republishes — duplicates, never gaps).
    pub fn flush(&self, sink: Option<&CommitEventSink>) -> Result<usize> {
        self.with_state(|st| {
            if st.pending.is_empty() {
                return Ok(0);
            }
            // Trace: the publish pass becomes one `feed` span per
            // published transaction (outside its root's commit window —
            // the feed is post-commit by construction).
            let tracer = self.env.tracer();
            let t_publish = self.env.sim().now();
            let publish_txns: Vec<Uuid> = if tracer.enabled() {
                let mut seen = std::collections::BTreeSet::new();
                st.pending
                    .iter()
                    .map(|e| e.txn)
                    .filter(|t| seen.insert(*t))
                    .collect()
            } else {
                Vec::new()
            };
            self.config.step("p3:notify:publish")?;
            let high = st.pending.last().map(|e| e.seq).unwrap_or(st.watermark);
            if let Some(sink) = sink {
                for ev in st.pending.drain(..) {
                    sink(ev);
                }
            } else {
                st.pending.clear();
            }
            self.config.step("p3:notify:wm")?;
            let sdb = self.sdb();
            let domain = feed_domain(&self.config.layout.domain);
            let published = (high - st.watermark) as usize;
            retry(self.env.sim(), self.config.retries, || {
                sdb.put_attributes(
                    &domain,
                    PutItem {
                        name: format!("{WM_PREFIX}{}", self.stream),
                        attrs: vec![("seq".into(), high.to_string())],
                        replace: true,
                    },
                )
            })?;
            st.watermark = high;
            let t_done = self.env.sim().now();
            for txn in publish_txns {
                if let Some(root) = tracer.root_ctx(txn.0) {
                    tracer.span(
                        txn.0,
                        Some(root.span),
                        "feed",
                        "feed",
                        None,
                        t_publish,
                        t_done,
                        0.0,
                    );
                }
            }
            Ok(published)
        })
    }
}

/// What [`audit_feed`] found in one stream's durable staging state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FeedAudit {
    /// Staged event items for the stream.
    pub events: usize,
    /// Distinct transactions among them (crash restaging duplicates a
    /// transaction under a fresh sequence — allowed).
    pub distinct_txns: usize,
    /// Highest staged sequence number.
    pub max_seq: u64,
    /// The stream's durable watermark (0 when never flushed).
    pub watermark: u64,
    /// Sequence numbers in `1..=max_seq` with no staged item — must be
    /// 0: staging allocates contiguously and never deletes.
    pub seq_gaps: u64,
    /// Sequence numbers staged more than once — must be 0: a sequence
    /// is allocated to exactly one event item.
    pub duplicate_seqs: u64,
    /// Distinct transactions among the staged events.
    pub txns: std::collections::BTreeSet<Uuid>,
}

impl FeedAudit {
    /// Staged-but-unpublished events (above the watermark). Non-zero
    /// after a crash between stage and watermark; must drain to 0 once
    /// a recovery daemon flushes.
    pub fn unpublished(&self) -> u64 {
        self.max_seq.saturating_sub(self.watermark)
    }
}

/// Audits one stream's slice of the feed domain against the storage-
/// level invariants (contiguous sequences, watermark ≤ max). Peeks
/// bypass metering and consistency: this is the invariant checker the
/// chaos explorer and the fleet harness call, not a consumer path.
pub fn audit_feed(env: &CloudEnv, domain: &str, stream: &str) -> FeedAudit {
    let prefix = format!("{EVT_PREFIX}{stream}~");
    let wm_item = format!("{WM_PREFIX}{stream}");
    let mut audit = FeedAudit::default();
    let mut seqs: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (name, attrs) in env.sdb().peek_items(&feed_domain(domain)) {
        if name == wm_item {
            audit.watermark = attrs
                .iter()
                .find(|(k, _)| k == "seq")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0);
            continue;
        }
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some((seq_txt, txn_txt)) = rest.split_once('~') else {
            continue;
        };
        let (Ok(seq), Ok(txn)) = (seq_txt.parse::<u64>(), txn_txt.parse::<Uuid>()) else {
            continue;
        };
        audit.events += 1;
        if !seqs.insert(seq) {
            audit.duplicate_seqs += 1;
        }
        audit.max_seq = audit.max_seq.max(seq);
        audit.txns.insert(txn);
    }
    audit.distinct_txns = audit.txns.len();
    audit.seq_gaps = audit.max_seq - seqs.len() as u64;
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::AwsProfile;
    use cloudprov_pass::PNodeId;
    use cloudprov_sim::Sim;

    fn setup() -> (Sim, CloudEnv) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        (sim, env)
    }

    fn touches(txn: u128, uuid: u128) -> StagedTouches {
        StagedTouches {
            txn: Uuid(txn),
            tenant: Some(TenantId(7)),
            uuids: vec![Uuid(uuid)],
            programs: vec!["prog".into()],
        }
    }

    #[test]
    fn stage_then_flush_publishes_in_order() {
        let (_sim, env) = setup();
        let w = FeedWriter::new(&env, ProtocolConfig::default(), "wal-a");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let sink: CommitEventSink = Arc::new(move |e: CommitEvent| seen2.lock().push(e));
        w.stage(&[touches(1, 10), touches(2, 20)]).unwrap();
        assert_eq!(w.flush(Some(&sink)).unwrap(), 2);
        let got = seen.lock().clone();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[1].seq, 2);
        assert_eq!(got[0].txn, Uuid(1));
        assert_eq!(got[0].tenant, Some(TenantId(7)));
        assert_eq!(got[0].uuids, vec![Uuid(10)]);
        assert_eq!(got[0].programs, vec!["prog".to_string()]);
        // Nothing pending after a flush.
        assert_eq!(w.flush(Some(&sink)).unwrap(), 0);
    }

    #[test]
    fn takeover_writer_republishes_unwatermarked_events() {
        // Writer A stages two events, publishes neither (crash before
        // publish). Writer B on the same stream recovers the backlog,
        // republishes it and continues the sequence without a gap.
        let (_sim, env) = setup();
        let a = FeedWriter::new(&env, ProtocolConfig::default(), "wal-a");
        a.stage(&[touches(1, 10), touches(2, 20)]).unwrap();
        drop(a);

        let b = FeedWriter::new(&env, ProtocolConfig::default(), "wal-a");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let sink: CommitEventSink = Arc::new(move |e: CommitEvent| seen2.lock().push(e));
        let staged = b.stage(&[touches(3, 30)]).unwrap();
        assert_eq!(staged[0].seq, 3, "sequence continues past the backlog");
        assert_eq!(b.flush(Some(&sink)).unwrap(), 3);
        let seqs: Vec<u64> = seen.lock().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "backlog first, in order, no gap");
    }

    #[test]
    fn watermark_survives_takeover_and_suppresses_republish() {
        let (_sim, env) = setup();
        let a = FeedWriter::new(&env, ProtocolConfig::default(), "wal-a");
        let sink: CommitEventSink = Arc::new(|_| {});
        a.stage(&[touches(1, 10)]).unwrap();
        a.flush(Some(&sink)).unwrap();
        drop(a);

        let b = FeedWriter::new(&env, ProtocolConfig::default(), "wal-a");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let sink: CommitEventSink = Arc::new(move |e: CommitEvent| seen2.lock().push(e));
        b.stage(&[touches(2, 20)]).unwrap();
        b.flush(Some(&sink)).unwrap();
        let seqs: Vec<u64> = seen.lock().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2], "published event is not replayed");
    }

    #[test]
    fn streams_are_independent() {
        let (_sim, env) = setup();
        let a = FeedWriter::new(&env, ProtocolConfig::default(), "wal-a");
        let b = FeedWriter::new(&env, ProtocolConfig::default(), "wal-b");
        let ea = a.stage(&[touches(1, 10)]).unwrap();
        let eb = b.stage(&[touches(2, 20)]).unwrap();
        assert_eq!(ea[0].seq, 1);
        assert_eq!(eb[0].seq, 1, "each stream numbers from 1");
    }

    #[test]
    fn audit_sees_contiguous_sequences_and_the_watermark() {
        let (_sim, env) = setup();
        let config = ProtocolConfig::default();
        let w = FeedWriter::new(&env, config.clone(), "wal-a");
        let sink: CommitEventSink = Arc::new(|_| {});
        w.stage(&[touches(1, 10), touches(2, 20)]).unwrap();
        let mid = audit_feed(&env, &config.layout.domain, "wal-a");
        assert_eq!(mid.events, 2);
        assert_eq!(mid.max_seq, 2);
        assert_eq!(mid.watermark, 0);
        assert_eq!(mid.unpublished(), 2, "staged but not yet published");
        w.flush(Some(&sink)).unwrap();
        w.stage(&[touches(3, 30)]).unwrap();
        w.flush(Some(&sink)).unwrap();
        let a = audit_feed(&env, &config.layout.domain, "wal-a");
        assert_eq!(a.events, 3);
        assert_eq!(a.distinct_txns, 3);
        assert_eq!(a.max_seq, 3);
        assert_eq!(a.watermark, 3);
        assert_eq!(a.unpublished(), 0);
        assert_eq!(a.seq_gaps, 0);
        assert_eq!(a.duplicate_seqs, 0);
        assert!(a.txns.contains(&Uuid(2)));
        // Another stream's slice is empty.
        let b = audit_feed(&env, &config.layout.domain, "wal-b");
        assert_eq!(b, FeedAudit::default());
    }

    #[test]
    fn extract_touches_finds_uuids_and_programs() {
        let p = PNodeId::initial(Uuid(1));
        let f = PNodeId::initial(Uuid(2));
        // An ancestor referenced by xref only — never a subject in this
        // transaction. Its rev_ index pages still change, so the event
        // must name it.
        let elder = PNodeId::initial(Uuid(7));
        let records = vec![
            ProvenanceRecord::new(p, Attr::Type, "process"),
            ProvenanceRecord::new(p, Attr::Name, "sort"),
            ProvenanceRecord::new(f, Attr::Type, "file"),
            ProvenanceRecord::new(f, Attr::Name, "/out"),
            ProvenanceRecord::new(f, Attr::Input, p),
            ProvenanceRecord::new(p, Attr::Input, elder),
        ];
        let (uuids, programs) = extract_touches(&records);
        assert_eq!(uuids, vec![Uuid(1), Uuid(2), Uuid(7)]);
        assert_eq!(
            programs,
            vec!["sort".to_string()],
            "file names are not programs"
        );
    }
}
