//! Protocol P1: standalone cloud store (§4.3.1).
//!
//! Both data and provenance live in S3. Each file maps to a primary S3
//! object; its provenance goes into a **separate** provenance object named
//! by the file's UUID (storing provenance as object *metadata* was
//! rejected: deletion would violate data-independent persistence and
//! metadata has hard size limits). The provenance object carries the
//! primary object's provenance plus one extra record naming the primary
//! object; the primary object's metadata carries the UUID and version,
//! linking the two.
//!
//! On flush: (1) PUT the provenance object (GET + append + PUT when it
//! already exists), then (2) PUT the data object with the linking
//! metadata. Non-persistent objects (processes, pipes) get only a
//! provenance object.
//!
//! Properties (Table 1): no data-coupling (but violations are detectable
//! via version/hash), eventual multi-object causal ordering (when
//! ancestors upload first), **no** efficient query — reading provenance
//! by attribute requires iterating every provenance object (§5.3).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use cloudprov_cloud::{Blob, CloudEnv, CloudError, Metadata};
use cloudprov_pass::wire;
use cloudprov_pass::{Attr, ProvenanceRecord, Uuid};

use crate::error::{ProtocolError, Result};
use crate::layout::{object_metadata, parse_object_metadata};
use crate::protocol::{
    detect_coupling, retry, CouplingCheck, FlushBatch, FlushObject, ProtocolConfig,
    ProvenanceStore, ReadResult, StorageProtocol,
};

/// Protocol P1: provenance and data both as S3 objects.
#[derive(Clone)]
pub struct P1 {
    env: CloudEnv,
    config: ProtocolConfig,
    /// Provenance bytes this client has already written per UUID. Serves
    /// two purposes: knowing whether the provenance object exists (GET +
    /// append vs fresh PUT) and guarding the append against an
    /// eventually-consistent GET returning a stale, shorter object.
    written: Arc<Mutex<BTreeMap<Uuid, usize>>>,
}

impl std::fmt::Debug for P1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("P1").finish()
    }
}

impl P1 {
    /// Creates the protocol over a cloud environment.
    pub fn new(env: &CloudEnv, config: ProtocolConfig) -> P1 {
        P1 {
            env: env.clone(),
            config,
            written: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Records P1 stores for a node: its pending records plus, for files,
    /// the extra record naming the primary S3 object (§4.3.1).
    fn object_records(obj: &FlushObject) -> Vec<ProvenanceRecord> {
        let mut records = obj.node.records.clone();
        if let Some(key) = &obj.key {
            records.push(ProvenanceRecord::new(
                obj.node.id,
                Attr::Custom("pobject".into()),
                key.as_str(),
            ));
        }
        records
    }

    /// Persists one object: provenance object first, then the data object.
    fn flush_one(&self, obj: &FlushObject) -> Result<()> {
        self.flush_prov(obj)?;
        self.flush_data(obj)
    }

    /// Writes (or appends to) the object's provenance object.
    fn flush_prov(&self, obj: &FlushObject) -> Result<()> {
        let sim = self.env.sim();
        let s3 = self.env.s3();
        let layout = &self.config.layout;
        let uuid = obj.node.id.uuid;
        let prov_key = layout.prov_key(uuid);
        let records = Self::object_records(obj);
        let fresh = wire::encode(&records);

        self.config.step(&format!("p1:prov:{}", obj.node.id))?;
        let existing_len = self.written.lock().get(&uuid).copied();
        let body = match existing_len {
            None => fresh.to_vec(),
            Some(known_len) => {
                // GET the existing object and append. An eventually
                // consistent GET can 404 or return a stale prefix; retry
                // until the object is at least as long as what we know we
                // wrote (we are its only writer).
                let mut existing = None;
                for _ in 0..self.config.retries.max(1) + 4 {
                    match retry(sim, self.config.retries, || {
                        s3.get(&layout.prov_bucket, &prov_key)
                    }) {
                        Ok(obj) => {
                            let bytes = obj
                                .blob
                                .as_inline()
                                .expect("provenance objects are inline")
                                .to_vec();
                            if bytes.len() >= known_len {
                                existing = Some(bytes);
                                break;
                            }
                        }
                        Err(CloudError::NoSuchKey { .. }) => {}
                        Err(e) => return Err(e.into()),
                    }
                    sim.sleep(std::time::Duration::from_millis(500));
                }
                let mut bytes = existing.ok_or_else(|| {
                    ProtocolError::CommitStalled(format!(
                        "provenance object {prov_key} never became visible for append"
                    ))
                })?;
                bytes.extend_from_slice(&fresh);
                bytes
            }
        };
        let body_len = body.len();
        retry(sim, self.config.retries, || {
            s3.put(
                &layout.prov_bucket,
                &prov_key,
                Blob::from(body.clone()),
                Metadata::new(),
            )
        })?;
        self.written.lock().insert(uuid, body_len);
        Ok(())
    }

    /// Writes the primary data object with its provenance-linking
    /// metadata.
    fn flush_data(&self, obj: &FlushObject) -> Result<()> {
        let sim = self.env.sim();
        let s3 = self.env.s3();
        let layout = &self.config.layout;
        if let (Some(key), Some(data)) = (&obj.key, &obj.data) {
            self.config.step(&format!("p1:data:{key}"))?;
            retry(sim, self.config.retries, || {
                s3.put(
                    &layout.data_bucket,
                    key,
                    data.clone(),
                    object_metadata(obj.node.id),
                )
            })?;
        }
        Ok(())
    }
}

impl StorageProtocol for P1 {
    fn name(&self) -> &'static str {
        "P1"
    }

    fn flush(&self, batch: FlushBatch) -> Result<()> {
        if self.config.strict_causal_order {
            // Ancestors strictly first: eventual multi-object causal
            // ordering holds, at higher latency (§4.3.1 discussion).
            for obj in &batch.objects {
                self.flush_one(obj)?;
            }
            Ok(())
        } else {
            // The paper's evaluated implementation: data objects,
            // provenance and ancestors upload in parallel (forfeiting
            // multi-object causal ordering and data-coupling for P1).
            // Appends to the same provenance object stay ordered by
            // chaining versions of one UUID into a single task.
            let sim = self.env.sim().clone();
            let mut chains: BTreeMap<Uuid, Vec<FlushObject>> = BTreeMap::new();
            let mut data_tasks: Vec<FlushObject> = Vec::new();
            for obj in batch.objects {
                if obj.key.is_some() {
                    data_tasks.push(FlushObject {
                        node: obj.node.clone(),
                        data: obj.data.clone(),
                        key: obj.key.clone(),
                    });
                }
                chains.entry(obj.node.id.uuid).or_default().push(obj);
            }
            let mut tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = Vec::new();
            for (_uuid, chain) in chains {
                let this = self.clone();
                tasks.push(Box::new(move || {
                    for obj in &chain {
                        this.flush_prov(obj)?;
                    }
                    Ok(())
                }));
            }
            for obj in data_tasks {
                let this = self.clone();
                tasks.push(Box::new(move || this.flush_data(&obj)));
            }
            let results = sim.run_parallel(self.config.upload_concurrency, tasks);
            results.into_iter().collect::<Result<Vec<_>>>()?;
            Ok(())
        }
    }

    fn read(&self, key: &str) -> Result<ReadResult> {
        let layout = &self.config.layout;
        let obj = retry(self.env.sim(), self.config.retries, || {
            self.env.s3().get(&layout.data_bucket, key)
        })?;
        let id = parse_object_metadata(&obj.meta);
        let coupling = match id {
            None => CouplingCheck::Unlinked,
            Some(id) => {
                match retry(self.env.sim(), self.config.retries, || {
                    self.env
                        .s3()
                        .get(&layout.prov_bucket, &layout.prov_key(id.uuid))
                }) {
                    Ok(prov) => {
                        let records =
                            wire::decode(prov.blob.as_inline().expect("inline provenance"))?;
                        let version_records: Vec<_> =
                            records.into_iter().filter(|r| r.subject == id).collect();
                        detect_coupling(&obj.blob, Some(id), &version_records)
                    }
                    Err(CloudError::NoSuchKey { .. }) => CouplingCheck::ProvenanceMissing,
                    Err(e) => return Err(e.into()),
                }
            }
        };
        Ok(ReadResult {
            data: obj.blob,
            id,
            coupling,
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        // Only the data object: provenance persists (data-independent
        // persistence). This is exactly why provenance is not stored as
        // object metadata (§4.3.1).
        retry(self.env.sim(), self.config.retries, || {
            self.env.s3().delete(&self.config.layout.data_bucket, key)
        })?;
        Ok(())
    }

    fn stat(&self, key: &str) -> Result<Option<u64>> {
        match retry(self.env.sim(), self.config.retries, || {
            self.env.s3().head(&self.config.layout.data_bucket, key)
        }) {
            Ok(h) => Ok(Some(h.len)),
            Err(CloudError::NoSuchKey { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn provenance_store(&self) -> Option<ProvenanceStore> {
        Some(ProvenanceStore::S3Objects {
            bucket: self.config.layout.prov_bucket.clone(),
            prefix: self.config.layout.prov_prefix.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_cloud::AwsProfile;
    use cloudprov_pass::{FlushNode, NodeKind, PNodeId};
    use cloudprov_sim::Sim;

    fn setup() -> (Sim, CloudEnv, P1) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let p1 = P1::new(&env, ProtocolConfig::default());
        (sim, env, p1)
    }

    fn file_obj(uuid: u128, version: u32, key: &str, data: &str) -> FlushObject {
        let id = PNodeId {
            uuid: Uuid(uuid),
            version,
        };
        let blob = Blob::from(data);
        let records = vec![
            ProvenanceRecord::new(id, Attr::Type, "file"),
            ProvenanceRecord::new(id, Attr::Name, key),
            ProvenanceRecord::new(
                id,
                Attr::DataHash,
                format!("{:016x}", blob.content_fingerprint()),
            ),
        ];
        FlushObject::file(
            FlushNode {
                id,
                kind: NodeKind::File,
                name: Some(key.to_string()),
                records,
                data_hash: Some(blob.content_fingerprint()),
            },
            key,
            blob,
        )
    }

    fn proc_obj(uuid: u128) -> FlushObject {
        let id = PNodeId::initial(Uuid(uuid));
        FlushObject::provenance_only(FlushNode {
            id,
            kind: NodeKind::Process,
            name: Some("proc".into()),
            records: vec![
                ProvenanceRecord::new(id, Attr::Type, "process"),
                ProvenanceRecord::new(id, Attr::Name, "proc"),
            ],
            data_hash: None,
        })
    }

    #[test]
    fn flush_then_read_is_coupled() {
        let (_sim, _env, p1) = setup();
        p1.flush(FlushBatch {
            objects: vec![proc_obj(1), file_obj(2, 1, "out.txt", "payload")],
        })
        .unwrap();
        let r = p1.read("out.txt").unwrap();
        assert_eq!(r.data, Blob::from("payload"));
        assert_eq!(r.coupling, CouplingCheck::Coupled);
        assert_eq!(r.id.unwrap().uuid, Uuid(2));
    }

    #[test]
    fn provenance_object_separate_from_primary() {
        let (_sim, env, p1) = setup();
        p1.flush(FlushBatch {
            objects: vec![file_obj(7, 1, "f", "x")],
        })
        .unwrap();
        let layout = &ProtocolConfig::default().layout;
        // Primary object in the data bucket, provenance in the prov bucket.
        assert!(env.s3().peek_committed("data", "f").is_some());
        let prov = env
            .s3()
            .peek_committed("prov", &layout.prov_key(Uuid(7)))
            .expect("provenance object must exist");
        let records = wire::decode(prov.blob.as_inline().unwrap()).unwrap();
        // Includes the pobject record naming the primary object.
        assert!(records
            .iter()
            .any(|r| r.attr == Attr::Custom("pobject".into()) && r.value.to_text() == "f"));
    }

    #[test]
    fn processes_store_provenance_without_primary_object() {
        let (_sim, env, p1) = setup();
        p1.flush(FlushBatch {
            objects: vec![proc_obj(9)],
        })
        .unwrap();
        assert_eq!(env.s3().peek_count("data", ""), 0);
        assert_eq!(env.s3().peek_count("prov", ""), 1);
    }

    #[test]
    fn append_on_second_flush_of_same_object() {
        let (_sim, env, p1) = setup();
        p1.flush(FlushBatch {
            objects: vec![file_obj(3, 1, "f", "v1")],
        })
        .unwrap();
        p1.flush(FlushBatch {
            objects: vec![file_obj(3, 2, "f", "v2")],
        })
        .unwrap();
        let layout = &ProtocolConfig::default().layout;
        let prov = env
            .s3()
            .peek_committed("prov", &layout.prov_key(Uuid(3)))
            .unwrap();
        let records = wire::decode(prov.blob.as_inline().unwrap()).unwrap();
        let versions: std::collections::BTreeSet<u32> =
            records.iter().map(|r| r.subject.version).collect();
        assert!(
            versions.contains(&1) && versions.contains(&2),
            "both versions' provenance must be in the object"
        );
    }

    #[test]
    fn delete_keeps_provenance() {
        let (_sim, env, p1) = setup();
        p1.flush(FlushBatch {
            objects: vec![file_obj(4, 1, "f", "x")],
        })
        .unwrap();
        p1.delete("f").unwrap();
        assert!(env.s3().peek_committed("data", "f").is_none());
        assert_eq!(env.s3().peek_count("prov", ""), 1, "provenance persists");
    }

    #[test]
    fn crash_between_prov_and_data_leaves_detectable_decoupling() {
        let (sim, env, _) = setup();
        let cfg = ProtocolConfig {
            step_hook: Some(Arc::new(|step: &str| !step.starts_with("p1:data:"))),
            ..ProtocolConfig::default()
        };
        let p1 = P1::new(&env, cfg);
        let err = p1
            .flush(FlushBatch {
                objects: vec![file_obj(5, 1, "f", "x")],
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Crashed { .. }));
        // Provenance written, data never arrived: DETECTABLE as missing
        // data; a later writer without provenance would be detectable as
        // missing provenance.
        assert_eq!(env.s3().peek_count("prov", ""), 1);
        assert!(env.s3().peek_committed("data", "f").is_none());
        drop(sim);
    }

    #[test]
    fn hash_mismatch_detected_when_data_overwritten_without_provenance() {
        let (_sim, env, p1) = setup();
        p1.flush(FlushBatch {
            objects: vec![file_obj(6, 1, "f", "original")],
        })
        .unwrap();
        // A rogue/plain client overwrites the data, keeping the metadata.
        let meta = env.s3().peek_committed("data", "f").unwrap().meta;
        env.s3()
            .put("data", "f", Blob::from("tampered"), meta)
            .unwrap();
        let r = p1.read("f").unwrap();
        assert_eq!(r.coupling, CouplingCheck::HashMismatch);
    }

    #[test]
    fn strict_order_uploads_ancestors_first() {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let seen = order.clone();
        let mut cfg = ProtocolConfig {
            strict_causal_order: true,
            ..ProtocolConfig::default()
        };
        cfg.step_hook = Some(Arc::new(move |step: &str| {
            seen.lock().push(step.to_string());
            true
        }));
        let p1 = P1::new(&env, cfg);
        p1.flush(FlushBatch {
            objects: vec![proc_obj(1), file_obj(2, 1, "out", "x")],
        })
        .unwrap();
        let steps = order.lock().clone();
        let anc = steps.iter().position(|s| s.contains(&Uuid(1).to_string()));
        let desc = steps.iter().position(|s| s.contains(&Uuid(2).to_string()));
        assert!(anc.unwrap() < desc.unwrap(), "ancestor persisted first");
    }

    #[test]
    fn provenance_store_is_s3() {
        let (_sim, _env, p1) = setup();
        assert!(matches!(
            p1.provenance_store(),
            Some(ProvenanceStore::S3Objects { .. })
        ));
        assert!(!p1.supports_efficient_query());
    }
}
