//! # cloudprov-core — the paper's contribution: provenance storage
//! protocols for the cloud
//!
//! Implements the three protocols of *Provenance for the Cloud* (FAST
//! 2010, §4) over the simulated AWS suite:
//!
//! | Protocol | Services | Coupling | Causal ordering | Efficient query |
//! |----------|----------|----------|-----------------|-----------------|
//! | [`P1`]   | S3                  | ✗ (detectable) | eventual | ✗ |
//! | [`P2`]   | S3 + SimpleDB       | ✗ (detectable) | eventual | ✓ |
//! | [`P3`]   | S3 + SimpleDB + SQS | ✓ (eventual)   | eventual | ✓ |
//!
//! plus the provenance-free [`S3fsBaseline`] the paper measures overheads
//! against, the asynchronous [`CommitDaemon`] and [`CleanerDaemon`] that
//! complete P3's write-ahead-log design, and executable checkers
//! ([`properties`]) for the §3 properties.
//!
//! The public entry point is the [`ProvenanceClient`] session facade:
//! callers pick a [`Protocol`], tune it through the typed
//! [`ClientBuilder`], and get one handle bundling the protocol, P3's
//! commit daemon and the optional non-blocking pipelined flush path.
//! The concrete protocol types remain exported for harnesses that need
//! to reach under the facade, but every consumer crate (workloads,
//! benches, examples, integration tests) constructs protocols through
//! the builder only.
//!
//! # Examples
//!
//! ```
//! use cloudprov_cloud::{AwsProfile, Blob, CloudEnv};
//! use cloudprov_core::{FlushBatch, FlushObject, Protocol, ProvenanceClient, StorageProtocol};
//! use cloudprov_pass::{Observer, Pid, ProcessInfo};
//! use cloudprov_sim::Sim;
//!
//! let sim = Sim::new();
//! let env = CloudEnv::new(&sim, AwsProfile::instant());
//! let client = ProvenanceClient::builder(Protocol::P3)
//!     .queue("wal-demo")
//!     .build(&env);
//!
//! // Collect provenance with PASS, then flush data + closure.
//! let mut obs = Observer::new(1);
//! obs.exec(Pid(1), ProcessInfo { name: "gen".into(), ..Default::default() });
//! let data = Blob::from("output bytes");
//! obs.write(Pid(1), "/out", data.content_fingerprint());
//! let closure = obs.flush_closure("/out");
//! let objects = closure
//!     .into_iter()
//!     .map(|node| {
//!         if node.kind.is_persistent() {
//!             FlushObject::file(node, "out", data.clone())
//!         } else {
//!             FlushObject::provenance_only(node)
//!         }
//!     })
//!     .collect();
//! client.flush(FlushBatch { objects })?;
//!
//! // `drain` runs the commit daemon to quiescence.
//! client.drain()?;
//! assert!(client.read("out")?.coupling.is_coupled());
//! # Ok::<(), cloudprov_core::ClientError>(())
//! ```

#![warn(missing_docs)]

pub mod cas;
mod client;
mod error;
pub mod feed;
pub mod index;
mod layout;
mod p1;
mod p2;
mod p3;
pub mod properties;
mod protocol;

pub use cas::{
    cas_domain, cas_object_key, sha256_hex, CasFlushItem, CasRef, CasStore, CAS_OBJECT_PREFIX,
};
pub use client::{
    AdmissionGate, ClientBuilder, FlushMode, FlushSample, FlushTicket, PipelineStats, Protocol,
    ProvenanceClient,
};
pub use error::{ClientError, ClientResult, ProtocolError, Result};
pub use feed::{audit_feed, CommitEvent, CommitEventSink, FeedAudit, FeedWriter, StagedTouches};
pub use layout::{object_metadata, parse_object_metadata, Layout, META_UUID, META_VERSION};
pub use p1::P1;
pub use p2::P2;
pub use p3::{
    pack_group_writes, CleanerDaemon, CommitDaemon, CommitListener, DaemonHandle, GroupWritePlan,
    PollOutcome, P3,
};
pub use protocol::{
    item_to_records, kill_at_occurrence, retry_cloud, CouplingCheck, FlushBatch, FlushObject,
    ProtocolConfig, ProvenanceStore, ReadResult, S3fsBaseline, StepHook, StorageProtocol,
};
