//! Shared random-workload generators for property, integration and chaos
//! tests.
//!
//! One seeded generator produces syscall-level scripts over a small set of
//! processes, files and pipes; the same script can be replayed onto a bare
//! PASS [`Observer`] (graph-level property tests) or through a full
//! [`PaS3fs`] mount (chaos exploration, integration tests), so every
//! harness exercises the same event space. Everything is a pure function
//! of the seed — the chaos explorer depends on that to replay failing
//! schedules exactly.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cloudprov_fs::PaS3fs;
use cloudprov_pass::{Observer, Pid, PipeId, ProcessInfo};

/// Number of distinct processes a script draws from.
pub const PROCESSES: u8 = 6;
/// Number of distinct files a script draws from.
pub const FILES: u8 = 8;
/// Number of distinct pipes a script draws from.
pub const PIPES: u8 = 3;

/// One syscall-level event over the script's small namespace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptEvent {
    /// Process `p` execs.
    Exec(u8),
    /// Process `p` reads file `f`.
    Read(u8, u8),
    /// Process `p` writes file `f`.
    Write(u8, u8),
    /// Process `p` writes pipe `q`.
    PipeWrite(u8, u8),
    /// Process `p` reads pipe `q`.
    PipeRead(u8, u8),
    /// File `f` is closed/flushed (uploads data + provenance closure).
    Close(u8),
    /// File `a` is renamed to file `b`.
    Rename(u8, u8),
    /// File `f` is unlinked.
    Unlink(u8),
}

/// Path of script file `f`.
pub fn file_path(f: u8) -> String {
    format!("/f{f}")
}

/// Object-store key of script file `f`.
pub fn file_key(f: u8) -> String {
    format!("f{f}")
}

/// Generates a script of a fixed prologue plus `len` seeded events.
///
/// The prologue execs two processes and dirties two files so every script
/// actually uploads something — without it, short scripts whose random
/// `Exec` events land late produce no cloud traffic at all and explore
/// nothing.
pub fn random_script(seed: u64, len: usize) -> Vec<ScriptEvent> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5C21_97E5_7E57_0000);
    let mut script = vec![
        ScriptEvent::Exec(0),
        ScriptEvent::Exec(1),
        ScriptEvent::Write(0, 0),
        ScriptEvent::Write(1, 1),
        ScriptEvent::Close(0),
    ];
    script.extend((0..len).map(|_| match rng.gen_range(0..12u8) {
        0 => ScriptEvent::Exec(rng.gen_range(0..PROCESSES)),
        1 | 2 => ScriptEvent::Read(rng.gen_range(0..PROCESSES), rng.gen_range(0..FILES)),
        3..=5 => ScriptEvent::Write(rng.gen_range(0..PROCESSES), rng.gen_range(0..FILES)),
        6 => ScriptEvent::PipeWrite(rng.gen_range(0..PROCESSES), rng.gen_range(0..PIPES)),
        7 => ScriptEvent::PipeRead(rng.gen_range(0..PROCESSES), rng.gen_range(0..PIPES)),
        8..=10 => ScriptEvent::Close(rng.gen_range(0..FILES)),
        _ => match rng.gen_range(0..2u8) {
            0 => ScriptEvent::Rename(rng.gen_range(0..FILES), rng.gen_range(0..FILES)),
            _ => ScriptEvent::Unlink(rng.gen_range(0..FILES)),
        },
    }));
    script
}

/// Replays a script onto a bare PASS [`Observer`] (no storage protocol).
///
/// Returns the observer and the total number of nodes emitted by the
/// `Close` events' flush closures. Events referencing processes that have
/// not exec'd, or pipes that were never written, are skipped — exactly the
/// guard the property tests have always applied.
pub fn apply_script(events: &[ScriptEvent]) -> (Observer, usize) {
    let mut obs = Observer::new(99);
    let mut flushed_nodes = 0;
    let mut live_pipes = BTreeSet::new();
    let mut execed = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        match ev {
            ScriptEvent::Exec(p) => {
                obs.exec(
                    Pid(u64::from(*p)),
                    ProcessInfo {
                        name: format!("proc{p}"),
                        exec_time_micros: i as u64,
                        ..Default::default()
                    },
                );
                execed.insert(*p);
            }
            ScriptEvent::Read(p, f) => {
                if execed.contains(p) {
                    obs.read(Pid(u64::from(*p)), &file_path(*f));
                }
            }
            ScriptEvent::Write(p, f) => {
                if execed.contains(p) {
                    obs.write(Pid(u64::from(*p)), &file_path(*f), i as u64);
                }
            }
            ScriptEvent::PipeWrite(p, q) => {
                if execed.contains(p) {
                    if live_pipes.insert(*q) {
                        obs.pipe_create(PipeId(u64::from(*q)));
                    }
                    obs.pipe_write(Pid(u64::from(*p)), PipeId(u64::from(*q)));
                }
            }
            ScriptEvent::PipeRead(p, q) => {
                if execed.contains(p) && live_pipes.contains(q) {
                    obs.pipe_read(Pid(u64::from(*p)), PipeId(u64::from(*q)));
                }
            }
            ScriptEvent::Close(f) => {
                flushed_nodes += obs.flush_closure(&file_path(*f)).len();
            }
            ScriptEvent::Rename(a, b) => {
                if a != b {
                    obs.rename(&file_path(*a), &file_path(*b));
                }
            }
            ScriptEvent::Unlink(f) => obs.unlink(&file_path(*f)),
        }
    }
    (obs, flushed_nodes)
}

/// Outcome of replaying a script through a [`PaS3fs`] mount.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsReplay {
    /// Events actually applied before the run ended.
    pub applied: usize,
    /// Keys whose *last* cloud operation was a successful close — the
    /// durability promise set a recovery check should validate (a key is
    /// removed again when a later unlink deletes it).
    pub durable_keys: BTreeSet<String>,
    /// The error that killed the client, if any (crash injection or an
    /// exhausted-retries service failure), with the event index it hit.
    pub died: Option<(usize, String)>,
}

/// Replays a script through a [`PaS3fs`] mount, stopping at the first
/// cloud-path error (the client "dies" there — crash injection kills all
/// subsequent steps anyway).
pub fn replay_fs(fs: &PaS3fs, events: &[ScriptEvent]) -> FsReplay {
    replay_fs_prefixed(fs, events, "")
}

/// [`replay_fs`] with every file path (and therefore cloud key) living
/// under `prefix` — e.g. `"/t0-c17"`. The fleet driver gives each of its
/// hundreds of clients a private namespace this way, so per-client
/// durability promises stay checkable even though all clients replay
/// the same small script alphabet.
pub fn replay_fs_prefixed(fs: &PaS3fs, events: &[ScriptEvent], prefix: &str) -> FsReplay {
    let path_of = |f: u8| format!("{prefix}{}", file_path(f));
    replay_fs_inner(fs, events, &path_of)
}

fn replay_fs_inner(
    fs: &PaS3fs,
    events: &[ScriptEvent],
    file_path: &dyn Fn(u8) -> String,
) -> FsReplay {
    // A file's object-store key is always its path minus the leading '/'
    // (PaS3fs's key_of_path) — derive it so the two can never diverge.
    let file_key = |f: u8| file_path(f).trim_start_matches('/').to_string();
    let mut out = FsReplay::default();
    let mut execed = BTreeSet::new();
    let mut live_pipes = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let result = match ev {
            ScriptEvent::Exec(p) => {
                fs.exec(
                    Pid(u64::from(*p)),
                    ProcessInfo {
                        name: format!("proc{p}"),
                        ..Default::default()
                    },
                );
                execed.insert(*p);
                Ok(())
            }
            ScriptEvent::Read(p, f) => {
                if execed.contains(p) {
                    fs.read(Pid(u64::from(*p)), &file_path(*f), 1024);
                }
                Ok(())
            }
            ScriptEvent::Write(p, f) => {
                if execed.contains(p) {
                    fs.write(Pid(u64::from(*p)), &file_path(*f), 2048);
                }
                Ok(())
            }
            ScriptEvent::PipeWrite(p, q) => {
                if execed.contains(p) {
                    if live_pipes.insert(*q) {
                        fs.pipe_create(PipeId(u64::from(*q)));
                    }
                    fs.pipe_write(Pid(u64::from(*p)), PipeId(u64::from(*q)));
                }
                Ok(())
            }
            ScriptEvent::PipeRead(p, q) => {
                if execed.contains(p) && live_pipes.contains(q) {
                    fs.pipe_read(Pid(u64::from(*p)), PipeId(u64::from(*q)));
                }
                Ok(())
            }
            ScriptEvent::Close(f) => {
                // A close only uploads — and therefore only promises
                // durability — when the cache holds unflushed changes.
                // Ask the file system rather than mirroring its dirty
                // bits: a close of another file can have uploaded this
                // one already (as a provenance ancestor) and cleaned it.
                let uploads = fs.cached_dirty(&file_path(*f));
                fs.close(Pid(0), &file_path(*f)).map(|()| {
                    if uploads {
                        out.durable_keys.insert(file_key(*f));
                    }
                })
            }
            ScriptEvent::Rename(a, b) => {
                if a != b {
                    // Renames stay local (as s3fs did for dirty files):
                    // cloud objects under both keys are untouched, so
                    // existing durability promises stand.
                    fs.rename(Pid(0), &file_path(*a), &file_path(*b));
                }
                Ok(())
            }
            ScriptEvent::Unlink(f) => fs.unlink(Pid(0), &file_path(*f)).map(|()| {
                out.durable_keys.remove(&file_key(*f));
            }),
        };
        match result {
            Ok(()) => out.applied += 1,
            Err(e) => {
                out.died = Some((i, e.to_string()));
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_per_seed() {
        assert_eq!(random_script(1, 64), random_script(1, 64));
        assert_ne!(random_script(1, 64), random_script(2, 64));
    }

    #[test]
    fn scripts_cover_every_event_kind() {
        let script = random_script(0, 4000);
        let kind = |e: &ScriptEvent| -> u8 {
            match e {
                ScriptEvent::Exec(_) => 0,
                ScriptEvent::Read(..) => 1,
                ScriptEvent::Write(..) => 2,
                ScriptEvent::PipeWrite(..) => 3,
                ScriptEvent::PipeRead(..) => 4,
                ScriptEvent::Close(_) => 5,
                ScriptEvent::Rename(..) => 6,
                ScriptEvent::Unlink(_) => 7,
            }
        };
        let kinds: BTreeSet<u8> = script.iter().map(kind).collect();
        assert_eq!(kinds.len(), 8, "all event kinds must appear");
    }

    #[test]
    fn observer_replay_is_acyclic() {
        for seed in 0..8 {
            let (obs, _) = apply_script(&random_script(seed, 120));
            assert!(obs.graph().find_cycle().is_none());
        }
    }
}
