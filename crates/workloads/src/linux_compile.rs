//! Synthetic Linux-compile provenance stream (§5.1, Table 2).
//!
//! The paper's service-throughput microbenchmark uploads "the first 50MB
//! of provenance generated during a Linux compile" to each of S3, SimpleDB
//! and SQS. This generator produces a record stream with the same texture:
//! one `cc` process per compilation unit (command line, ~1.7 KB of
//! environment split across SimpleDB-safe values, dependencies on source
//! and header nodes) plus the emitted object-file node.

use cloudprov_pass::{Attr, PNodeId, ProvenanceRecord, Uuid};

/// Generates at least `target_bytes` of wire-encoded provenance.
///
/// All attribute values stay ≤1 KB so the stream can be loaded into the
/// database service without spilling (the Table 2 benchmark measures raw
/// service throughput, not protocol logic).
pub fn linux_compile_provenance(target_bytes: usize) -> Vec<ProvenanceRecord> {
    let mut records = Vec::new();
    let mut bytes = 0usize;
    let mut unit = 0u128;
    let push = |records: &mut Vec<ProvenanceRecord>, bytes: &mut usize, r: ProvenanceRecord| {
        *bytes += r.wire_len();
        records.push(r);
    };
    // Shared toolchain/header nodes.
    let cc_bin = PNodeId::initial(Uuid(0xCC));
    push(
        &mut records,
        &mut bytes,
        ProvenanceRecord::new(cc_bin, Attr::Type, "file"),
    );
    push(
        &mut records,
        &mut bytes,
        ProvenanceRecord::new(cc_bin, Attr::Name, "/usr/bin/cc"),
    );
    let headers: Vec<PNodeId> = (0..32u128)
        .map(|h| {
            let id = PNodeId::initial(Uuid(0x4EAD_0000 + h));
            push(
                &mut records,
                &mut bytes,
                ProvenanceRecord::new(id, Attr::Type, "file"),
            );
            push(
                &mut records,
                &mut bytes,
                ProvenanceRecord::new(id, Attr::Name, format!("/usr/src/linux/include/h{h}.h")),
            );
            id
        })
        .collect();

    while bytes < target_bytes {
        let src = PNodeId::initial(Uuid(0x5000_0000 + unit * 4));
        let proc_ = PNodeId::initial(Uuid(0x5000_0001 + unit * 4));
        let obj = PNodeId::initial(Uuid(0x5000_0002 + unit * 4));
        let dir = format!(
            "/usr/src/linux/{}/{}",
            ["kernel", "fs", "mm", "net", "drivers"][unit as usize % 5],
            unit
        );

        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(src, Attr::Type, "file"),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(src, Attr::Name, format!("{dir}/unit{unit}.c")),
        );

        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(proc_, Attr::Type, "process"),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(proc_, Attr::Name, "cc1"),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(proc_, Attr::Pid, format!("{}", 2_000 + unit)),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(
                proc_,
                Attr::Argv,
                format!(
                    "cc -Wp,-MD,{dir}/.unit{unit}.o.d -nostdinc -isystem /usr/lib/gcc/include \
                     -D__KERNEL__ -Iinclude -Wall -Wundef -Wstrict-prototypes -Wno-trigraphs \
                     -fno-strict-aliasing -fno-common -O2 -fomit-frame-pointer -c -o \
                     {dir}/unit{unit}.o {dir}/unit{unit}.c"
                ),
            ),
        );
        // Environment split into two ≤1 KB values (as PASS records it).
        for (i, fill) in [("PATH", 880), ("KBUILD", 760)].iter().enumerate() {
            push(
                &mut records,
                &mut bytes,
                ProvenanceRecord::new(
                    proc_,
                    Attr::Custom(format!("env{i}")),
                    format!("{}={}", fill.0, "x".repeat(fill.1)),
                ),
            );
        }
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(proc_, Attr::ExecTime, format!("{}", unit * 250_000)),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(proc_, Attr::Input, cc_bin),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(proc_, Attr::Input, src),
        );
        for h in 0..4 {
            let header = headers[(unit as usize * 7 + h) % headers.len()];
            push(
                &mut records,
                &mut bytes,
                ProvenanceRecord::new(proc_, Attr::Input, header),
            );
        }

        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(obj, Attr::Type, "file"),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(obj, Attr::Name, format!("{dir}/unit{unit}.o")),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(obj, Attr::Input, proc_),
        );
        push(
            &mut records,
            &mut bytes,
            ProvenanceRecord::new(
                obj,
                Attr::DataHash,
                format!("{:016x}", unit.wrapping_mul(0x9E37)),
            ),
        );
        unit += 1;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudprov_pass::wire;

    #[test]
    fn produces_at_least_the_requested_bytes() {
        let records = linux_compile_provenance(1 << 20);
        let encoded = wire::encode(&records);
        assert!(encoded.len() >= 1 << 20);
        // Not wildly more than requested (wire_len slightly underestimates
        // the real encoding, so allow ~10% slack).
        assert!(encoded.len() < (1 << 20) + (128 << 10));
    }

    #[test]
    fn values_fit_simpledb_without_spilling() {
        for r in linux_compile_provenance(256 << 10) {
            assert!(r.value.text_len() <= 1024, "oversized: {r}");
        }
    }

    #[test]
    fn stream_is_a_valid_dag_with_compile_texture() {
        let records = linux_compile_provenance(512 << 10);
        let g = cloudprov_pass::ProvGraph::from_records(&records);
        assert!(g.find_cycle().is_none());
        // Object files depend on cc1 processes which depend on sources.
        let any_obj = records
            .iter()
            .find(|r| r.attr == Attr::Name && r.value.to_text().ends_with(".o"))
            .unwrap()
            .subject;
        assert!(g.depth_from(any_obj) >= 2);
    }

    #[test]
    fn roundtrips_through_wire_format() {
        let records = linux_compile_provenance(64 << 10);
        let decoded = wire::decode(&wire::encode(&records)).unwrap();
        assert_eq!(decoded.len(), records.len());
    }
}
