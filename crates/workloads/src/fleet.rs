//! [`FleetDriver`]: hundreds of simulated clients against the sharded
//! commit plane.
//!
//! Each run provisions one [`Fleet`] (M WAL shards, lease board, daemon
//! pool of N workers, backpressure) and spawns C clients on simulated
//! threads. Every client belongs to a tenant, mounts a [`PaS3fs`] over a
//! pipelined, throttled P3 session routed to its shard, and replays a
//! seeded [`testkit`](crate::testkit) script in a private key namespace.
//! After the clients sync their WALs, the driver waits for the commit
//! plane to quiesce, then machine-checks the fleet-scale invariants:
//!
//! * every WAL shard drained, no temp objects left behind;
//! * no transaction committed twice (pool registry), none lost
//!   (`unique committed == transactions logged`);
//! * every key a client's successful close promised durable reads back
//!   **coupled** (§3 provenance data-coupling) once the eventual-
//!   consistency window has passed;
//! * no client died or saw a pipeline error.
//!
//! The report carries the scaling metrics (aggregate commit throughput,
//! p50/p99 flush→durable latency) and per-tenant op/byte/dollar
//! attribution — the `repro -- fleet` table is rows of these.

use std::sync::Arc;
use std::time::Duration;

use cloudprov_cloud::{AwsProfile, CloudEnv, PriceBook, TenantId};
use cloudprov_core::{
    CommitEvent, CouplingCheck, FlushSample, Protocol, ProtocolConfig, ProvenanceClient,
    StorageProtocol,
};
use cloudprov_feed::{Predicate, Subscriptions};
use cloudprov_fleet::{Fleet, FleetConfig, PoolStats};
use cloudprov_fs::{LocalIoParams, PaS3fs};
use cloudprov_pass::Uuid;
use cloudprov_sim::Sim;
use cloudprov_sim::SimTime;
use cloudprov_trace::metrics::Registry;
use cloudprov_trace::Breakdown;

use crate::testkit::{random_script, replay_fs_prefixed};

/// Parameters of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetParams {
    /// Simulated clients.
    pub clients: usize,
    /// Tenants the clients are spread over (round-robin).
    pub tenants: u32,
    /// WAL shards.
    pub shards: u32,
    /// Commit-daemon workers.
    pub daemons: usize,
    /// Events per client script (plus the testkit prologue).
    pub script_len: usize,
    /// Master seed: scripts, service jitter and placement all derive
    /// from it — equal seeds give bit-identical reports.
    pub seed: u64,
    /// Per-shard WAL depth bound (0 disables backpressure).
    pub max_shard_depth: usize,
    /// Push mode: daemons ride WAL arrival notifications and the driver
    /// rides the commit feed; `poll_interval` degrades to the fallback
    /// cadence for lost wakeups. `false` reproduces the pure polling
    /// plane of the earlier benchmark tables.
    pub push: bool,
    /// Commit-daemon poll interval (push mode: fallback cadence).
    pub poll_interval: Duration,
    /// Commit-lease TTL.
    pub lease_ttl: Duration,
    /// Cloud latency/consistency profile (the run context's calibrated
    /// profile for benchmark tables, `instant` for unit tests).
    pub profile: AwsProfile,
    /// Enable causal span tracing: every committed transaction yields a
    /// connected trace tree on the virtual clock, and the report gains
    /// the per-phase commit-latency breakdown plus the trace gates.
    /// Adds no virtual time, so traced and untraced runs measure
    /// identically.
    pub trace: bool,
    /// Additionally render the collected spans as Chrome `trace_event`
    /// JSON into [`FleetReport::trace_json`] (Perfetto-loadable).
    /// Requires `trace`.
    pub trace_export: bool,
}

impl Default for FleetParams {
    fn default() -> FleetParams {
        FleetParams {
            clients: 64,
            tenants: 8,
            shards: 4,
            daemons: 2,
            script_len: 24,
            seed: 0,
            max_shard_depth: 64,
            push: true,
            poll_interval: Duration::from_secs(5),
            lease_ttl: Duration::from_secs(120),
            profile: AwsProfile::calibrated(Default::default()),
            trace: false,
            trace_export: false,
        }
    }
}

/// Per-tenant slice of the bill.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantUsage {
    /// The tenant.
    pub tenant: u32,
    /// Service calls attributed to the tenant.
    pub ops: u64,
    /// Bytes (in + out) attributed to the tenant, in megabytes.
    pub mb: f64,
    /// Dollars (2009 prices) for the tenant's transfer, requests and
    /// box usage (storage-time is pooled, see `UsageReport::tenant_view`).
    pub usd: f64,
}

/// Everything one fleet run measured.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    /// Echo of the run shape.
    pub clients: usize,
    /// Echo of the run shape.
    pub tenants: u32,
    /// Echo of the run shape.
    pub shards: u32,
    /// Echo of the run shape.
    pub daemons: usize,
    /// WAL transactions the clients logged (non-empty pipeline merges).
    pub logged_txns: u64,
    /// Transactions the pool committed (with multiplicity).
    pub committed: u64,
    /// Distinct transactions committed.
    pub unique_committed: u64,
    /// Transactions committed more than once (§3 invariant: must be 0).
    pub double_commits: u64,
    /// Virtual time from start until every client had synced its WAL.
    pub client_phase: Duration,
    /// Virtual time from start until the commit plane fully quiesced.
    pub elapsed: Duration,
    /// Aggregate commit throughput: committed transactions per virtual
    /// second over the whole run.
    pub throughput: f64,
    /// Median flush→durable (WAL-logged) latency across all clients.
    pub p50: Duration,
    /// 99th-percentile flush→durable latency.
    pub p99: Duration,
    /// Latency samples behind the percentiles.
    pub samples: usize,
    /// Median admission wait per flush (the per-shard backpressure
    /// gate). Deliberately *not* a component of `p50`/`p99`: admission
    /// is throttling by design, reported on its own so a tail there is
    /// never mistaken for upload cost.
    pub admission_p50: Duration,
    /// 99th-percentile admission wait.
    pub admission_p99: Duration,
    /// Median flusher-queue dwell (submit → flusher pickup) — the part
    /// of flush latency spent waiting behind earlier merges.
    pub queue_p50: Duration,
    /// 99th-percentile flusher-queue dwell.
    pub queue_p99: Duration,
    /// Median upload component (flusher pickup → WAL durable) — the
    /// delta upload itself; content-addressed ancestors ride background
    /// publishes and contribute nothing here.
    pub upload_p50: Duration,
    /// 99th-percentile upload component.
    pub upload_p99: Duration,
    /// Median per-transaction commit latency: WAL-durable → committed
    /// by the daemon pool (the commit plane's own contribution, which
    /// group commit attacks; flush→durable latency is client-bound).
    pub commit_p50: Duration,
    /// 99th-percentile commit latency.
    pub commit_p99: Duration,
    /// (logged txn, commit time) pairs behind the commit percentiles.
    pub commit_samples: usize,
    /// Median pickup dwell: WAL-durable → the transaction's first WAL
    /// message received by a daemon. The waiting component of commit
    /// latency — what push delivery eliminates (service time, which
    /// 2009-calibrated latencies put at several seconds per group, is
    /// `commit_p50 - pickup_p50`).
    pub pickup_p50: Duration,
    /// 99th-percentile pickup dwell.
    pub pickup_p99: Duration,
    /// WAL messages left after the quiesce deadline (must be 0).
    pub wal_leftover: usize,
    /// Temp objects left after commit + cleaner sweep (must be 0).
    pub temp_leftover: usize,
    /// Durable-promised keys that read back missing (must be 0).
    pub missing_durable: usize,
    /// Durable-promised keys that read back uncoupled (must be 0).
    pub coupling_violations: usize,
    /// Up to the first 8 failed checks, as `key: verdict` strings (CI
    /// triage — which key, and what the read actually saw).
    pub failed_checks: Vec<String>,
    /// Keys whose durability promise was verified.
    pub durable_checked: usize,
    /// Clients that died mid-script or saw a pipeline error (must be 0).
    pub client_errors: usize,
    /// Whole-fleet bill at 2009 prices.
    pub total_cost_usd: f64,
    /// Per-tenant attribution, tenant order.
    pub per_tenant: Vec<TenantUsage>,
    /// Whether the run used push delivery (doorbells + commit feed).
    pub push: bool,
    /// Commit events the driver's feed subscription observed.
    pub feed_events: u64,
    /// Duplicate feed deliveries (allowed by the at-least-once contract,
    /// reported for visibility).
    pub feed_duplicates: u64,
    /// Feed sequence gaps plus out-of-order deliveries (must be 0).
    pub feed_gaps: u64,
    /// Committed transactions that never surfaced on the feed (must be
    /// 0 in push mode: at-least-once means *at least* once).
    pub feed_missing: u64,
    /// Objects clients' pipelines dropped because an earlier batch
    /// already persisted them (dedupe-set evictions, summed).
    pub dedupe_evictions: u64,
    /// Whether the run collected spans (`params.trace`).
    pub traced: bool,
    /// Spans collected (0 when untraced).
    pub trace_spans: u64,
    /// Spans whose parent is unknown — a broken propagation seam (must
    /// be 0 on a traced run).
    pub trace_orphans: u64,
    /// Traced transactions whose root-span duration disagreed with the
    /// measured WAL-durable→committed latency by more than one sim tick
    /// (must be 0 on a traced run).
    pub trace_root_mismatches: u64,
    /// Exclusive per-phase attribution of the commit-p50 transaction's
    /// latency (traced runs with at least one commit). Its phase sum
    /// reconciles with `commit_p50` exactly.
    pub breakdown: Option<Breakdown>,
    /// Chrome `trace_event` JSON of the whole run's spans
    /// (`params.trace_export`); byte-identical across equal seeds.
    pub trace_json: Option<String>,
    /// Commit-plane counters (lease churn, steals, handoffs…).
    pub pool: PoolStats,
}

impl FleetReport {
    /// The fleet-scale invariant violations (§3 applied to the plane);
    /// empty means the run was clean.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.double_commits > 0 {
            v.push(format!(
                "{} double-committed transactions",
                self.double_commits
            ));
        }
        if self.unique_committed != self.logged_txns {
            v.push(format!(
                "committed {} of {} logged transactions",
                self.unique_committed, self.logged_txns
            ));
        }
        if self.wal_leftover > 0 {
            v.push(format!(
                "{} WAL messages never committed",
                self.wal_leftover
            ));
        }
        if self.temp_leftover > 0 {
            v.push(format!("{} temp objects leaked", self.temp_leftover));
        }
        if self.missing_durable > 0 {
            v.push(format!("{} durable promises broken", self.missing_durable));
        }
        if self.coupling_violations > 0 {
            v.push(format!("{} coupling violations", self.coupling_violations));
        }
        if self.client_errors > 0 {
            v.push(format!("{} clients died", self.client_errors));
        }
        if self.feed_gaps > 0 {
            v.push(format!("{} feed sequence gaps", self.feed_gaps));
        }
        if self.feed_missing > 0 {
            v.push(format!(
                "{} committed transactions never reached the feed",
                self.feed_missing
            ));
        }
        if self.traced {
            if self.trace_orphans > 0 {
                v.push(format!("{} orphan spans", self.trace_orphans));
            }
            if self.trace_root_mismatches > 0 {
                v.push(format!(
                    "{} trace roots disagree with measured commit latency",
                    self.trace_root_mismatches
                ));
            }
            match &self.breakdown {
                None if self.unique_committed > 0 => {
                    v.push("traced run with commits but no breakdown".to_string());
                }
                Some(b) => {
                    let (sum, p50) = (b.commit_sum(), self.commit_p50);
                    if sum.abs_diff(p50) > Duration::from_micros(1) {
                        v.push(format!(
                            "phase sum {sum:?} does not reconcile with commit p50 {p50:?}"
                        ));
                    }
                }
                None => {}
            }
        }
        v
    }
}

struct ClientOutcome {
    durable_keys: std::collections::BTreeSet<String>,
    breakdown: Vec<FlushSample>,
    logged: Vec<(Uuid, SimTime)>,
    logged_txns: u64,
    dedupe_evictions: u64,
    failed: bool,
}

/// SplitMix64 finalizer. The workspace's `SmallRng` is splitmix, whose
/// streams for seeds `s` and `s + k·γ` are the *same* orbit `k` draws
/// apart — so per-client seeds must never be derived by multiplying the
/// client index with γ-like constants (that exact bug once made three
/// fleet clients draw identical node uuids). Mixing through the
/// finalizer scatters the seeds far apart on the orbit.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Drives one complete fleet run. Pure function of `params` — the same
/// parameters (including the seed) reproduce the identical report.
pub fn run_fleet(params: &FleetParams) -> FleetReport {
    let sim = Sim::new();
    let mut profile = params.profile.clone();
    profile.seed = params.seed;
    let env = CloudEnv::new(&sim, profile);
    if params.trace {
        // The tracer never sleeps or draws randomness, so a traced run's
        // virtual timeline is identical to an untraced one.
        env.tracer().enable(params.seed);
    }
    let protocol_config = ProtocolConfig {
        feed: params.push,
        ..ProtocolConfig::default()
    };
    let fleet = Fleet::provision(
        &env,
        protocol_config.clone(),
        FleetConfig {
            shards: params.shards,
            lease_ttl: params.lease_ttl,
            max_shard_depth: params.max_shard_depth,
            admission_poll: Duration::from_millis(200),
            push: params.push,
        },
    );
    let pool = fleet.spawn_pool(params.daemons, params.poll_interval);
    // Push mode: the driver is itself a feed consumer — an all-events
    // subscription whose deliveries replace the blind quiesce sweep.
    let subs = params.push.then(|| Subscriptions::new(&sim));
    let monitor = subs.as_ref().map(|s| {
        let sub = s
            .subscribe(None, Predicate::All)
            .expect("fresh registry cannot be over quota");
        pool.set_event_sink(s.sink());
        sub
    });
    let t0 = sim.now();

    // Client phase: C simulated threads, each replaying its script in a
    // private namespace and syncing its WAL before exiting.
    let handles: Vec<_> = (0..params.clients)
        .map(|c| {
            let fleet = fleet.clone();
            let params = params.clone();
            sim.spawn(move || {
                let tenant = TenantId(c as u32 % params.tenants.max(1));
                let name = format!("t{}-c{c}", tenant.0);
                let client = Arc::new(fleet.client(&name, Some(tenant)));
                let fs = PaS3fs::attach(
                    client.clone(),
                    LocalIoParams::instant(),
                    mix64(params.seed ^ mix64(0x0B5E_77E5 ^ c as u64)),
                );
                let script = random_script(
                    mix64(params.seed ^ mix64(0x5C41_9700 ^ c as u64)),
                    params.script_len,
                );
                let replay = replay_fs_prefixed(&fs, &script, &format!("/{name}"));
                let sync_failed = client.sync().is_err();
                let stats = client.pipeline_stats();
                ClientOutcome {
                    durable_keys: replay.durable_keys,
                    breakdown: client.flush_breakdown(),
                    logged: client.wal_logged_transactions(),
                    logged_txns: stats.as_ref().map(|s| s.uploads).unwrap_or(0),
                    dedupe_evictions: stats.map(|s| s.dedupe_evictions).unwrap_or(0),
                    failed: replay.died.is_some() || sync_failed,
                }
            })
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = handles.into_iter().map(|h| h.join()).collect();
    let client_phase = sim.now().saturating_duration_since(t0);

    // Quiesce: wait for every shard WAL to drain (bounded — SQS itself
    // would garbage-collect at 4 days, so a healthy plane is long done).
    // Push mode rides the change feed: each commit event wakes the
    // driver, so the depth re-check happens at delivery granularity
    // instead of the poll interval; a quiet interval falls back to the
    // same cadence as polling (lost wakeups degrade, never hang).
    let mut feed_events: Vec<CommitEvent> = Vec::new();
    let deadline = sim.now() + Duration::from_secs(24 * 3600);
    while fleet.total_depth() > 0 && sim.now() < deadline {
        match &monitor {
            Some(sub) => {
                if let Some(ev) = sub.next_timeout(params.poll_interval) {
                    feed_events.push(ev);
                }
            }
            None => sim.sleep(params.poll_interval),
        }
    }
    let elapsed = sim.now().saturating_duration_since(t0);
    let wal_leftover = fleet.total_depth();
    let commit_times: std::collections::BTreeMap<Uuid, SimTime> =
        pool.commit_times().into_iter().collect();
    let pickup_times: std::collections::BTreeMap<Uuid, SimTime> =
        pool.pickup_times().into_iter().collect();
    let pool_stats = pool.stop();
    // Drain deliveries that raced the final depth check.
    if let Some(sub) = &monitor {
        while let Some(ev) = sub.try_next() {
            feed_events.push(ev);
        }
    }
    // A healthy run has nothing for the cleaners; sweeping anyway keeps
    // the reclamation paths (temp objects AND ancestry-index garbage)
    // exercised at fleet scale.
    let _ = fleet.cleaners().sweep_once();
    let _ = fleet.cleaners().sweep_index_once();
    let temp_leftover = env.s3().peek_count(
        &protocol_config.layout.data_bucket,
        &protocol_config.layout.temp_prefix,
    );

    // Bill the run BEFORE verification reads — the check traffic is the
    // harness's, not the tenants'.
    let usage = env.usage();
    let book = PriceBook::aws_2009();
    let total_cost_usd = book.cost(&usage).total();
    let per_tenant: Vec<TenantUsage> = usage
        .tenants()
        .into_iter()
        .map(|t| TenantUsage {
            tenant: t.0,
            ops: usage.tenant_ops_total(t),
            mb: usage.tenant_bytes_total(t) as f64 / 1e6,
            usd: book.cost(&usage.tenant_view(t)).total(),
        })
        .collect();

    // Verification: outlast the consistency window, then read every
    // promised key through a plain blocking session.
    sim.sleep(env.profile().consistency.max_staleness + Duration::from_secs(1));
    // The verifier only reads; it must not provision feed state.
    let verifier = ProvenanceClient::builder(Protocol::P3)
        .config(ProtocolConfig {
            feed: false,
            ..protocol_config.clone()
        })
        .queue("fleet-verifier")
        .build(&env);
    let mut missing_durable = 0;
    let mut coupling_violations = 0;
    let mut failed_checks: Vec<String> = Vec::new();
    let mut durable_checked = 0;
    let mut client_errors = 0;
    // All run percentiles live in ONE metrics registry — one sorting
    // and rounding convention for the table, the JSON and the gates.
    let mut reg = Registry::new();
    // (commit latency, txn) pairs: the registry carries the percentiles,
    // the pairs identify the p50 transaction for the phase breakdown.
    let mut commit_pairs: Vec<(Duration, Uuid)> = Vec::new();
    let mut trace_root_mismatches = 0u64;
    let mut logged_txns = 0;
    for o in &outcomes {
        if o.failed {
            client_errors += 1;
        }
        logged_txns += o.logged_txns;
        reg.add("client.dedupe_evictions", o.dedupe_evictions);
        for s in &o.breakdown {
            reg.record("flush.total", s.total);
            reg.record("flush.admission", s.admission);
            reg.record("flush.queue", s.queued);
            reg.record("flush.upload", s.upload);
        }
        // Join this client's logged-at instants with the pool's
        // committed-at instants: the commit plane's per-transaction
        // latency, WAL-durable -> committed.
        for (txn, logged_at) in &o.logged {
            if let Some(committed_at) = commit_times.get(txn) {
                let lag = committed_at.saturating_duration_since(*logged_at);
                reg.record("commit.latency", lag);
                commit_pairs.push((lag, *txn));
                if params.trace {
                    // Gate: the trace tree's root must BE this measured
                    // latency, to the sim tick.
                    let ok = env.tracer().root_interval(txn.0).is_some_and(|(s, e)| {
                        let got = e.saturating_duration_since(s);
                        got.abs_diff(lag) <= Duration::from_micros(1)
                    });
                    if !ok {
                        trace_root_mismatches += 1;
                    }
                }
            }
            if let Some(seen_at) = pickup_times.get(txn) {
                reg.record(
                    "commit.pickup",
                    seen_at.saturating_duration_since(*logged_at),
                );
            }
        }
        for key in &o.durable_keys {
            durable_checked += 1;
            match verifier.read(key) {
                Ok(r) if r.coupling == CouplingCheck::Coupled => {}
                Ok(r) => {
                    coupling_violations += 1;
                    if failed_checks.len() < 8 {
                        failed_checks.push(format!("{key}: {:?}", r.coupling));
                    }
                }
                Err(e) => {
                    missing_durable += 1;
                    if failed_checks.len() < 8 {
                        failed_checks.push(format!("{key}: {e}"));
                    }
                }
            }
        }
    }
    // The commit-p50 transaction's critical path: sort the (latency,
    // txn) pairs and take the registry's nearest-rank median element —
    // its trace-tree walk attributes exactly `commit_p50` across the
    // phases.
    let breakdown = if params.trace && !commit_pairs.is_empty() {
        commit_pairs.sort_unstable();
        let rank =
            ((0.5 * commit_pairs.len() as f64).ceil() as usize).clamp(1, commit_pairs.len()) - 1;
        env.tracer().critical_path(commit_pairs[rank].1 .0)
    } else {
        None
    };
    let trace_stats = params.trace.then(|| env.tracer().stats());
    let trace_json = (params.trace && params.trace_export).then(|| env.tracer().chrome_trace());

    // Feed accounting: the bus's own gap/duplicate counters plus the
    // at-least-once join — every committed transaction must have shown
    // up on the monitor subscription at least once.
    let (feed_duplicates, feed_gaps) = match (&subs, &monitor) {
        (Some(s), Some(sub)) => {
            let st = s.stats();
            (st.duplicates, st.gaps + sub.out_of_order())
        }
        _ => (0, 0),
    };
    let feed_missing = if params.push {
        let seen: std::collections::BTreeSet<Uuid> = feed_events.iter().map(|e| e.txn).collect();
        commit_times.keys().filter(|t| !seen.contains(t)).count() as u64
    } else {
        0
    };

    let secs = elapsed.as_secs_f64();
    FleetReport {
        clients: params.clients,
        tenants: params.tenants,
        shards: params.shards,
        daemons: params.daemons,
        logged_txns,
        committed: pool_stats.committed,
        unique_committed: pool_stats.unique_committed,
        double_commits: pool_stats.double_commits,
        client_phase,
        elapsed,
        throughput: if secs > 0.0 {
            pool_stats.committed as f64 / secs
        } else {
            0.0
        },
        p50: reg.percentile("flush.total", 50.0),
        p99: reg.percentile("flush.total", 99.0),
        samples: reg.count("flush.total"),
        admission_p50: reg.percentile("flush.admission", 50.0),
        admission_p99: reg.percentile("flush.admission", 99.0),
        queue_p50: reg.percentile("flush.queue", 50.0),
        queue_p99: reg.percentile("flush.queue", 99.0),
        upload_p50: reg.percentile("flush.upload", 50.0),
        upload_p99: reg.percentile("flush.upload", 99.0),
        commit_p50: reg.percentile("commit.latency", 50.0),
        commit_p99: reg.percentile("commit.latency", 99.0),
        commit_samples: reg.count("commit.latency"),
        pickup_p50: reg.percentile("commit.pickup", 50.0),
        pickup_p99: reg.percentile("commit.pickup", 99.0),
        wal_leftover,
        temp_leftover,
        missing_durable,
        coupling_violations,
        failed_checks,
        durable_checked,
        client_errors,
        total_cost_usd,
        per_tenant,
        push: params.push,
        feed_events: feed_events.len() as u64,
        feed_duplicates,
        feed_gaps,
        feed_missing,
        dedupe_evictions: reg.counter("client.dedupe_evictions"),
        traced: params.trace,
        trace_spans: trace_stats.map(|s| s.spans).unwrap_or(0),
        trace_orphans: trace_stats.map(|s| s.orphans).unwrap_or(0),
        trace_root_mismatches,
        breakdown,
        trace_json,
        pool: pool_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetParams {
        FleetParams {
            clients: 12,
            tenants: 3,
            shards: 2,
            daemons: 2,
            script_len: 16,
            seed: 7,
            poll_interval: Duration::from_secs(2),
            profile: AwsProfile::instant(),
            ..FleetParams::default()
        }
    }

    #[test]
    fn small_fleet_run_is_clean() {
        let r = run_fleet(&small());
        assert_eq!(r.violations(), Vec::<String>::new());
        assert!(r.committed > 0, "clients must have produced transactions");
        assert_eq!(r.committed, r.unique_committed);
        assert!(r.durable_checked > 0);
        assert_eq!(r.per_tenant.len(), 3);
        assert!(r.per_tenant.iter().all(|t| t.ops > 0));
        assert!(r.total_cost_usd > 0.0);
        assert!(r.samples > 0, "pipeline latencies must be sampled");
        assert!(r.commit_samples > 0, "commit latencies must be sampled");
        assert!(
            r.commit_samples as u64 == r.unique_committed,
            "every committed txn should have a matched commit latency"
        );
        // Push mode: the driver's feed subscription saw every commit,
        // in order, with no holes.
        assert!(r.push);
        assert!(
            r.feed_events >= r.unique_committed,
            "at-least-once: {} events for {} commits",
            r.feed_events,
            r.unique_committed
        );
        assert_eq!(r.feed_gaps, 0);
        assert_eq!(r.feed_missing, 0);
        // Pickup (WAL-durable -> first daemon receive) is a prefix of
        // commit latency, so its median can never exceed the commit
        // median.
        assert!(
            r.pickup_p50 <= r.commit_p50,
            "pickup {:?} cannot exceed commit {:?}",
            r.pickup_p50,
            r.commit_p50
        );
    }

    #[test]
    fn polling_mode_still_drains_without_a_feed() {
        let r = run_fleet(&FleetParams {
            push: false,
            ..small()
        });
        assert_eq!(r.violations(), Vec::<String>::new());
        assert!(!r.push);
        assert_eq!(r.feed_events, 0, "polling plane publishes no feed");
        assert_eq!(r.pool.wakeups, 0, "no doorbells in polling mode");
        assert!(r.committed > 0);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = run_fleet(&small());
        let b = run_fleet(&small());
        assert_eq!(a, b, "same params + seed must reproduce bit-identically");
        let c = run_fleet(&FleetParams { seed: 8, ..small() });
        assert_ne!(a, c, "a different seed should shift the run");
    }

    #[test]
    fn traced_runs_reconcile_and_reproduce() {
        let params = FleetParams {
            trace: true,
            trace_export: true,
            ..small()
        };
        let r = run_fleet(&params);
        assert_eq!(r.violations(), Vec::<String>::new());
        assert!(r.traced);
        assert!(r.trace_spans > 0, "a traced run must record spans");
        assert_eq!(r.trace_orphans, 0, "every span must reach a txn root");
        assert_eq!(
            r.trace_root_mismatches, 0,
            "root spans must agree with measured commit latency"
        );
        let b = r.breakdown.expect("committed txns imply a breakdown");
        assert!(
            b.commit_sum().abs_diff(r.commit_p50) <= Duration::from_micros(1),
            "phase sum {:?} must reconcile with commit p50 {:?}",
            b.commit_sum(),
            r.commit_p50
        );
        let json = r.trace_json.as_ref().expect("export requested");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Tracing must not perturb the sim: same seed, same trace bytes.
        let again = run_fleet(&params);
        assert_eq!(r, again, "traced runs must reproduce bit-identically");
        // And an untraced run of the same seed must agree on every
        // latency figure (tracing is observation, not interference).
        // The bill is allowed to creep by the span-context attribute
        // bytes riding the WAL messages — those bill like any payload.
        let untraced = run_fleet(&small());
        assert_eq!(r.commit_p50, untraced.commit_p50);
        assert_eq!(r.p99, untraced.p99);
        assert_eq!(r.committed, untraced.committed);
        assert!(
            r.total_cost_usd >= untraced.total_cost_usd
                && r.total_cost_usd - untraced.total_cost_usd < 1e-5,
            "context bytes may only nudge the bill upward: {} vs {}",
            r.total_cost_usd,
            untraced.total_cost_usd
        );
    }

    #[test]
    fn tenant_bills_sum_to_client_side_traffic() {
        let r = run_fleet(&small());
        let tenant_usd: f64 = r.per_tenant.iter().map(|t| t.usd).sum();
        assert!(tenant_usd > 0.0);
        assert!(
            tenant_usd <= r.total_cost_usd + 1e-9,
            "tenant slices ({tenant_usd}) cannot exceed the whole bill ({})",
            r.total_cost_usd
        );
    }
}
