//! Trace replay: drives a [`PaS3fs`] client with a workload trace,
//! returning the elapsed virtual time — the paper's Figure 4 measurement.

use std::time::Duration;

use cloudprov_core::Result;
use cloudprov_fs::PaS3fs;
use cloudprov_pass::{Pid, PipeId, ProcessInfo};
use cloudprov_sim::Sim;

use crate::trace::{synthetic_env, Trace, TraceEvent};

/// Summary of one replayed run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Elapsed virtual time for the whole workload.
    pub elapsed: Duration,
    /// Events replayed.
    pub events: usize,
}

/// Replays `trace` through `fs`, consuming virtual time on `sim`.
///
/// # Errors
///
/// Propagates the first protocol error (crash injection, retries
/// exhausted). Workload traces on healthy services replay without error.
pub fn replay(sim: &Sim, fs: &PaS3fs, trace: &Trace) -> Result<ReplaySummary> {
    let start = sim.now();
    for event in &trace.events {
        match event {
            TraceEvent::Exec {
                pid,
                name,
                argv,
                env_bytes,
                exe,
            } => {
                let seed = pid ^ (name.len() as u64);
                fs.exec(
                    Pid(*pid),
                    ProcessInfo {
                        name: name.clone(),
                        argv: argv.clone(),
                        env: synthetic_env(*env_bytes, seed),
                        exe_path: exe.clone(),
                        exec_time_micros: 0, // stamped by PaS3fs
                    },
                );
            }
            TraceEvent::Fork { parent, child } => fs.fork(Pid(*parent), Pid(*child)),
            TraceEvent::Open { pid, path } => fs.open(Pid(*pid), path)?,
            TraceEvent::Read { pid, path, bytes } => fs.read(Pid(*pid), path, *bytes),
            TraceEvent::Write { pid, path, bytes } => fs.write(Pid(*pid), path, *bytes),
            TraceEvent::Close { pid, path } => fs.close(Pid(*pid), path)?,
            TraceEvent::Stat { pid, path } => {
                let _ = pid;
                fs.stat_cloud(path)?;
            }
            TraceEvent::Unlink { pid, path } => fs.unlink(Pid(*pid), path)?,
            TraceEvent::Rename { pid, from, to } => fs.rename(Pid(*pid), from, to),
            TraceEvent::PipeCreate { id } => fs.pipe_create(PipeId(*id)),
            TraceEvent::PipeWrite { pid, id } => fs.pipe_write(Pid(*pid), PipeId(*id)),
            TraceEvent::PipeRead { pid, id } => fs.pipe_read(Pid(*pid), PipeId(*id)),
            TraceEvent::Compute { micros } => fs.compute(Duration::from_micros(*micros)),
            TraceEvent::MemBound { micros } => fs.membound(Duration::from_micros(*micros)),
            TraceEvent::Exit { pid } => fs.exit(Pid(*pid)),
        }
    }
    Ok(ReplaySummary {
        elapsed: sim.now() - start,
        events: trace.events.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nightly::{nightly, NightlyParams};
    use cloudprov_cloud::{AwsProfile, CloudEnv};
    use cloudprov_core::{Protocol, ProvenanceClient};
    use cloudprov_fs::LocalIoParams;
    use std::sync::Arc;

    fn run(protocol: Protocol) -> (CloudEnv, ReplaySummary) {
        let sim = Sim::new();
        let env = CloudEnv::new(&sim, AwsProfile::instant());
        let client = Arc::new(ProvenanceClient::builder(protocol).build(&env));
        let fs = PaS3fs::attach(client, LocalIoParams::instant(), 1);
        let summary = replay(&sim, &fs, &nightly(NightlyParams::small())).unwrap();
        (env, summary)
    }

    #[test]
    fn baseline_replay_uploads_every_snapshot() {
        let (env, summary) = run(Protocol::S3fs);
        assert!(summary.events > 0);
        assert_eq!(env.s3().peek_count("data", "backup/"), 3);
        // No provenance anywhere.
        assert_eq!(env.s3().peek_count("prov", ""), 0);
    }

    #[test]
    fn p1_replay_also_stores_provenance() {
        let (env, _) = run(Protocol::P1);
        assert_eq!(env.s3().peek_count("data", "backup/"), 3);
        assert!(env.s3().peek_count("prov", "p/") > 3);
    }

    #[test]
    fn provenance_op_overhead_is_positive_but_bounded() {
        let (base_env, _) = run(Protocol::S3fs);
        let (p1_env, _) = run(Protocol::P1);
        let base_ops = base_env.usage().client_ops();
        let p1_ops = p1_env.usage().client_ops();
        assert!(p1_ops > base_ops);
        assert!(p1_ops < base_ops * 6);
    }
}
