//! The Blast workload (§5).
//!
//! "This is a biological workload representative of scientific computing
//! workloads. Blast is a tool used to find protein sequences that are
//! closely related in two different species. This workload simulates the
//! typical Blast job observed at NIH. The provenance tree of the workload
//! has a depth of five. The workload has a mix of compute and IO
//! operations and S3fs performs 10,773 operations under this workload."
//!
//! Structure generated here: `formatdb` builds a formatted database from a
//! raw FASTA file; each query runs `blastall` (large environment — this is
//! what exercises the P2/P3 >1 KB spill path) writing a hits file, piped
//! into a `parse_hits` stage writing a parsed file; every 24 queries an
//! aggregation step produces a report. With the default parameters the
//! workload writes 617 distinct files (the microbenchmark's upload set)
//! and ~713 MB, and the baseline performs ≈10.8k cloud operations.

use crate::trace::{Trace, TraceEvent};

/// Tuning knobs for the Blast workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlastParams {
    /// Number of query sequences.
    pub queries: usize,
    /// Hits-file size per query.
    pub hit_bytes: u64,
    /// Parsed-output size per query.
    pub parsed_bytes: u64,
    /// Database chunk read per query (page-cache pressure).
    pub db_read_bytes: u64,
    /// Number of blastall invocations the queries are split across
    /// (Table 5's Q.3 cost implies ≈36 Blast process nodes).
    pub invocations: usize,
    /// blastall environment size (>1 KB forces the spill path).
    pub blastall_env_bytes: usize,
    /// parser environment size.
    pub parser_env_bytes: usize,
    /// formatter environment size.
    pub fmt_env_bytes: usize,
    /// Path-lookup getattrs per query (s3fs chatter).
    pub stats_per_query: usize,
    /// Path-lookup getattrs per blastall invocation.
    pub stats_per_batch: usize,
    /// Queries per aggregated report.
    pub queries_per_report: usize,
    /// Native CPU time per query, microseconds.
    pub compute_micros_per_query: u64,
    /// Native memory-bound time per query, microseconds (the part UML
    /// amplifies ~3.4×, §5.2).
    pub membound_micros_per_query: u64,
}

impl Default for BlastParams {
    fn default() -> Self {
        BlastParams {
            queries: 300,
            hit_bytes: 1_160_000,
            parsed_bytes: 1_105_000,
            db_read_bytes: 64 << 20,
            invocations: 36,
            blastall_env_bytes: 6_000,
            parser_env_bytes: 6_000,
            fmt_env_bytes: 2_500,
            stats_per_query: 29,
            stats_per_batch: 23,
            queries_per_report: 24,
            compute_micros_per_query: 700_000,
            membound_micros_per_query: 500_000,
        }
    }
}

impl BlastParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> BlastParams {
        BlastParams {
            queries: 6,
            hit_bytes: 200_000,
            parsed_bytes: 150_000,
            db_read_bytes: 1 << 20,
            invocations: 2,
            stats_per_query: 5,
            stats_per_batch: 5,
            queries_per_report: 3,
            compute_micros_per_query: 1_000,
            membound_micros_per_query: 1_000,
            ..BlastParams::default()
        }
    }
}

/// Generates the Blast trace.
pub fn blast(p: BlastParams) -> Trace {
    let mut t = Trace::new("blast");

    // --- formatdb: raw FASTA -> formatted database (3 files). ---
    let formatdb_pid = 10;
    t.push(TraceEvent::Exec {
        pid: formatdb_pid,
        name: "formatdb".into(),
        argv: vec!["formatdb".into(), "-i".into(), "/blast/db/nr.fasta".into()],
        env_bytes: 900,
        exe: Some("/usr/bin/formatdb".into()),
    });
    t.push(TraceEvent::Read {
        pid: formatdb_pid,
        path: "/blast/db/nr.fasta".into(),
        bytes: 512 << 20,
    });
    for ext in ["phr", "pin", "psq"] {
        let path = format!("/blast/db/nr.{ext}");
        t.push(TraceEvent::Open {
            pid: formatdb_pid,
            path: path.clone(),
        });
        t.push(TraceEvent::Write {
            pid: formatdb_pid,
            path: path.clone(),
            bytes: 10 << 20,
        });
        t.push(TraceEvent::Close {
            pid: formatdb_pid,
            path,
        });
    }
    t.push(TraceEvent::Exit { pid: formatdb_pid });

    // --- the query set file ---
    let qgen_pid = 11;
    t.push(TraceEvent::Exec {
        pid: qgen_pid,
        name: "fastacmd".into(),
        argv: vec!["fastacmd".into(), "-o".into(), "/blast/queries.fa".into()],
        env_bytes: 800,
        exe: Some("/usr/bin/fastacmd".into()),
    });
    t.push(TraceEvent::Open {
        pid: qgen_pid,
        path: "/blast/queries.fa".into(),
    });
    t.push(TraceEvent::Write {
        pid: qgen_pid,
        path: "/blast/queries.fa".into(),
        bytes: 2 << 20,
    });
    t.push(TraceEvent::Close {
        pid: qgen_pid,
        path: "/blast/queries.fa".into(),
    });
    t.push(TraceEvent::Exit { pid: qgen_pid });

    // --- blastall invocations, each handling a slice of queries ---
    //
    // The paper's Table 5 implies ~36 blastall process nodes (Q.3 costs
    // 37 SimpleDB ops: one SELECT to find the Blast processes plus one per
    // process), with 300 per-query outputs overall.
    let batches = p.invocations.max(1);
    let per_batch = p.queries / batches;
    let remainder = p.queries % batches;
    let mut q = 0usize;
    let mut report_buf: Vec<usize> = Vec::new();
    let mut report_idx = 0usize;
    for b in 0..batches {
        let batch_queries = per_batch + usize::from(b < remainder);
        let blast_pid = 100 + b as u64;
        t.push(TraceEvent::Exec {
            pid: blast_pid,
            name: "blastall".into(),
            argv: vec![
                "blastall".into(),
                "-p".into(),
                "blastp".into(),
                "-d".into(),
                "/blast/db/nr".into(),
                "-i".into(),
                "/blast/queries.fa".into(),
                "-e".into(),
                "1e-5".into(),
                "-m".into(),
                "7".into(),
                format!("--batch={b}"),
            ],
            env_bytes: p.blastall_env_bytes,
            exe: Some("/usr/bin/blastall".into()),
        });
        for st in 0..p.stats_per_batch {
            t.push(TraceEvent::Stat {
                pid: blast_pid,
                path: format!("/blast/out/.lookup{}", st % 7),
            });
        }
        t.push(TraceEvent::Read {
            pid: blast_pid,
            path: "/blast/queries.fa".into(),
            bytes: 4_096 * batch_queries as u64,
        });
        t.push(TraceEvent::Read {
            pid: blast_pid,
            path: "/blast/db/nr.psq".into(),
            bytes: p.db_read_bytes,
        });

        // Status pipe blastall -> parsers.
        let pipe = b as u64;
        t.push(TraceEvent::PipeCreate { id: pipe });
        t.push(TraceEvent::PipeWrite {
            pid: blast_pid,
            id: pipe,
        });

        for _ in 0..batch_queries {
            let hits = format!("/blast/out/hits-{q:04}.txt");
            let parsed = format!("/blast/out/parsed-{q:04}.txt");
            let parse_pid = 10_000 + q as u64;

            t.push(TraceEvent::MemBound {
                micros: p.membound_micros_per_query,
            });
            t.push(TraceEvent::Compute {
                micros: p.compute_micros_per_query,
            });
            t.push(TraceEvent::Open {
                pid: blast_pid,
                path: hits.clone(),
            });
            t.push(TraceEvent::Write {
                pid: blast_pid,
                path: hits.clone(),
                bytes: p.hit_bytes,
            });
            t.push(TraceEvent::Close {
                pid: blast_pid,
                path: hits.clone(),
            });

            t.push(TraceEvent::Exec {
                pid: parse_pid,
                name: "parse_hits".into(),
                argv: vec!["parse_hits".into(), hits.clone(), parsed.clone()],
                env_bytes: p.parser_env_bytes,
                exe: Some("/usr/local/bin/parse_hits".into()),
            });
            for st in 0..p.stats_per_query {
                t.push(TraceEvent::Stat {
                    pid: parse_pid,
                    path: format!("/blast/out/.plookup{}", st % 5),
                });
            }
            t.push(TraceEvent::PipeRead {
                pid: parse_pid,
                id: pipe,
            });
            t.push(TraceEvent::Read {
                pid: parse_pid,
                path: hits.clone(),
                bytes: p.hit_bytes,
            });
            t.push(TraceEvent::Open {
                pid: parse_pid,
                path: parsed.clone(),
            });
            t.push(TraceEvent::Write {
                pid: parse_pid,
                path: parsed.clone(),
                bytes: p.parsed_bytes,
            });
            t.push(TraceEvent::Close {
                pid: parse_pid,
                path: parsed.clone(),
            });
            t.push(TraceEvent::Exit { pid: parse_pid });

            // A formatting stage summarizes each parsed file into a status
            // pipe the aggregator drains (one process + one pipe per
            // query — the corpus texture behind the paper's ~1,670
            // provenance objects).
            let fmt_pid = 20_000 + q as u64;
            let fmt_pipe = 1_000 + q as u64;
            t.push(TraceEvent::Exec {
                pid: fmt_pid,
                name: "blast_fmt".into(),
                argv: vec!["blast_fmt".into(), parsed.clone()],
                env_bytes: p.fmt_env_bytes,
                exe: Some("/usr/local/bin/blast_fmt".into()),
            });
            t.push(TraceEvent::Read {
                pid: fmt_pid,
                path: parsed.clone(),
                bytes: 32_768,
            });
            t.push(TraceEvent::PipeCreate { id: fmt_pipe });
            t.push(TraceEvent::PipeWrite {
                pid: fmt_pid,
                id: fmt_pipe,
            });
            t.push(TraceEvent::Exit { pid: fmt_pid });

            report_buf.push(q);
            q += 1;
            let is_last = q == p.queries;
            if report_buf.len() == p.queries_per_report || (is_last && !report_buf.is_empty()) {
                let agg_pid = 50_000 + report_idx as u64;
                let report = format!("/blast/reports/report-{report_idx:02}.csv");
                t.push(TraceEvent::Exec {
                    pid: agg_pid,
                    name: "blast_aggregate".into(),
                    argv: vec!["blast_aggregate".into(), "-o".into(), report.clone()],
                    env_bytes: 900,
                    exe: Some("/usr/local/bin/blast_aggregate".into()),
                });
                for qq in report_buf.drain(..) {
                    t.push(TraceEvent::Read {
                        pid: agg_pid,
                        path: format!("/blast/out/parsed-{qq:04}.txt"),
                        bytes: 65_536,
                    });
                    t.push(TraceEvent::PipeRead {
                        pid: agg_pid,
                        id: 1_000 + qq as u64,
                    });
                }
                t.push(TraceEvent::Open {
                    pid: agg_pid,
                    path: report.clone(),
                });
                t.push(TraceEvent::Write {
                    pid: agg_pid,
                    path: report.clone(),
                    bytes: 96_000,
                });
                t.push(TraceEvent::Close {
                    pid: agg_pid,
                    path: report,
                });
                t.push(TraceEvent::Exit { pid: agg_pid });
                report_idx += 1;
            }
        }
        t.push(TraceEvent::Exit { pid: blast_pid });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_characteristics() {
        let t = blast(BlastParams::default());
        let s = t.stats();
        // 3 db + 1 queries + 300 hits + 300 parsed + 13 reports = 617
        // distinct files — the microbenchmark's 617-op baseline (Table 3).
        assert_eq!(s.files_written, 617);
        // ≈713 MB uploaded (Table 3: 713.09 MB for S3fs).
        let mb = s.bytes_written as f64 / 1e6;
        assert!((700.0..730.0).contains(&mb), "got {mb} MB");
        // Baseline workload ops near the paper's 10,773.
        let baseline_ops = s.lookups + s.closes;
        assert!(
            (10_000..11_500).contains(&baseline_ops),
            "got {baseline_ops}"
        );
        assert!(s.compute_micros > 0, "mix of compute and IO");
    }

    #[test]
    fn provenance_depth_is_about_five() {
        let run = crate::offline::collect(&blast(BlastParams::small()));
        // The paper's "depth of five" counts data generations. Project the
        // graph to file-to-file edges (collapse processes/pipes/version
        // chains) with the dilution transform and measure there: raw
        // fasta -> formatted db -> hits -> parsed -> report.
        let diluted =
            cloudprov_pass::dilute::dilute(&run.graph, &cloudprov_pass::dilute::SingleHost);
        let report = run
            .nodes
            .iter()
            .rev()
            .find(|n| n.name.as_deref().is_some_and(|n| n.contains("report")))
            .unwrap();
        let depth = diluted.graph.depth_from(report.id);
        assert!(
            (4..=7).contains(&depth),
            "expected file-generation depth \u{2248}5 (paper), got {depth}"
        );
        assert!(run.graph.find_cycle().is_none());
    }

    #[test]
    fn node_count_near_microbenchmark_scale() {
        let run = crate::offline::collect(&blast(BlastParams::default()));
        // Paper Table 5 / Table 3 imply ≈1,670 provenance-bearing objects.
        let n = run.nodes.len();
        assert!((1_400..2_000).contains(&n), "got {n} nodes");
    }
}
