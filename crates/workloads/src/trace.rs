//! Syscall-level workload traces.
//!
//! A [`Trace`] is the replayable representation of one of the paper's
//! evaluation workloads: the exact sequence of process and file-system
//! events the PASS kernel would observe, plus compute/memory phases that
//! consume client CPU time. The [`driver`](crate::driver) replays a trace
//! against a [`PaS3fs`](cloudprov_fs::PaS3fs) instance.

/// One observed event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Process exec with descriptive attributes.
    Exec {
        /// Process id.
        pid: u64,
        /// Process name.
        name: String,
        /// Command line.
        argv: Vec<String>,
        /// Environment size in bytes (synthesized deterministically).
        env_bytes: usize,
        /// Executable path, recorded as a dependency.
        exe: Option<String>,
    },
    /// Process fork.
    Fork {
        /// Parent pid.
        parent: u64,
        /// Child pid.
        child: u64,
    },
    /// File open (s3fs getattr).
    Open {
        /// Acting pid.
        pid: u64,
        /// Path.
        path: String,
    },
    /// Read `bytes` from `path`.
    Read {
        /// Acting pid.
        pid: u64,
        /// Path.
        path: String,
        /// Bytes read.
        bytes: u64,
    },
    /// Write `bytes` to `path`.
    Write {
        /// Acting pid.
        pid: u64,
        /// Path.
        path: String,
        /// Bytes written.
        bytes: u64,
    },
    /// Close (triggers upload of dirty data + provenance).
    Close {
        /// Acting pid.
        pid: u64,
        /// Path.
        path: String,
    },
    /// Standalone getattr (directory scans, lookups).
    Stat {
        /// Acting pid.
        pid: u64,
        /// Path.
        path: String,
    },
    /// Unlink (deletes cloud data; provenance persists).
    Unlink {
        /// Acting pid.
        pid: u64,
        /// Path.
        path: String,
    },
    /// Rename.
    Rename {
        /// Acting pid.
        pid: u64,
        /// Old path.
        from: String,
        /// New path.
        to: String,
    },
    /// Pipe creation.
    PipeCreate {
        /// Pipe id.
        id: u64,
    },
    /// Pipe write.
    PipeWrite {
        /// Acting pid.
        pid: u64,
        /// Pipe id.
        id: u64,
    },
    /// Pipe read.
    PipeRead {
        /// Acting pid.
        pid: u64,
        /// Pipe id.
        id: u64,
    },
    /// CPU-bound phase (UML factor 2×, §5.2).
    Compute {
        /// Native duration in microseconds.
        micros: u64,
    },
    /// Memory-pressure-bound phase (steeper UML factor; this is what made
    /// Blast collapse from 650 s to 1322 s under UML's 512 MB, §5.2).
    MemBound {
        /// Native duration in microseconds.
        micros: u64,
    },
    /// Process exit.
    Exit {
        /// Exiting pid.
        pid: u64,
    },
}

/// A complete workload trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Workload name ("nightly", "blast", "challenge").
    pub name: String,
    /// The event sequence.
    pub events: Vec<TraceEvent>,
}

/// Summary statistics of a trace (used to sanity-check generators against
/// the paper's workload characterizations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of events.
    pub events: usize,
    /// Distinct files written.
    pub files_written: usize,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Close events.
    pub closes: usize,
    /// Open + Stat events (the baseline's HEAD traffic).
    pub lookups: usize,
    /// Exec events.
    pub execs: usize,
    /// Total native compute time, microseconds.
    pub compute_micros: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Trace {
        Trace {
            name: name.into(),
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            events: self.events.len(),
            ..TraceStats::default()
        };
        let mut written = std::collections::BTreeSet::new();
        for e in &self.events {
            match e {
                TraceEvent::Write { path, bytes, .. } => {
                    written.insert(path.clone());
                    s.bytes_written += bytes;
                }
                TraceEvent::Read { bytes, .. } => s.bytes_read += bytes,
                TraceEvent::Close { .. } => s.closes += 1,
                TraceEvent::Open { .. } | TraceEvent::Stat { .. } => s.lookups += 1,
                TraceEvent::Exec { .. } => s.execs += 1,
                TraceEvent::Compute { micros } | TraceEvent::MemBound { micros } => {
                    s.compute_micros += micros;
                }
                _ => {}
            }
        }
        s.files_written = written.len();
        s
    }
}

/// Deterministic synthetic environment of roughly `bytes` bytes (process
/// environments are what push provenance values past SimpleDB's 1 KB
/// limit, forcing the P2/P3 spill path).
pub fn synthetic_env(bytes: usize, seed: u64) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut total = 0usize;
    let mut i = 0u64;
    while total + 40 < bytes {
        let k = format!("VAR_{seed:04x}_{i}");
        let v = format!("/opt/pkg/{seed:x}/{i}/lib:/usr/lib:/usr/local/lib");
        total += k.len() + v.len() + 2;
        out.push((k, v));
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate_correctly() {
        let mut t = Trace::new("test");
        t.push(TraceEvent::Exec {
            pid: 1,
            name: "p".into(),
            argv: vec![],
            env_bytes: 0,
            exe: None,
        });
        t.push(TraceEvent::Open {
            pid: 1,
            path: "/a".into(),
        });
        t.push(TraceEvent::Write {
            pid: 1,
            path: "/a".into(),
            bytes: 100,
        });
        t.push(TraceEvent::Write {
            pid: 1,
            path: "/a".into(),
            bytes: 50,
        });
        t.push(TraceEvent::Read {
            pid: 1,
            path: "/b".into(),
            bytes: 10,
        });
        t.push(TraceEvent::Close {
            pid: 1,
            path: "/a".into(),
        });
        t.push(TraceEvent::Stat {
            pid: 1,
            path: "/a".into(),
        });
        t.push(TraceEvent::Compute { micros: 500 });
        let s = t.stats();
        assert_eq!(s.events, 8);
        assert_eq!(s.files_written, 1);
        assert_eq!(s.bytes_written, 150);
        assert_eq!(s.bytes_read, 10);
        assert_eq!(s.closes, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.execs, 1);
        assert_eq!(s.compute_micros, 500);
    }

    #[test]
    fn synthetic_env_hits_target_size() {
        for target in [512usize, 2048, 6144] {
            let env = synthetic_env(target, 7);
            let total: usize = env.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
            assert!(total <= target + 64, "at most one entry of overshoot");
            assert!(total > target / 2, "reasonably close to target");
        }
    }

    #[test]
    fn synthetic_env_is_deterministic() {
        assert_eq!(synthetic_env(1000, 3), synthetic_env(1000, 3));
        assert_ne!(synthetic_env(1000, 3), synthetic_env(1000, 4));
    }
}
