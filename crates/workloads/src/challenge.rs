//! The provenance-challenge workload (§5).
//!
//! "This is the workload used in the first and second provenance
//! challenge. The workload simulates an experiment in fMRI imaging. The
//! inputs to the workload are a set of new brain images and a single
//! reference brain image. First, the workload normalizes the images with
//! respect to the reference image. Second, it transforms the image into a
//! new image. Third, it averages all the transformed images into one
//! single image. Fourth, it slices the average image in each of three
//! dimensions [...]. Last, it converts the atlas data set into a graphical
//! atlas image. The challenge workload graph is the deepest with maximum
//! path length of eleven."
//!
//! Pipeline per run: `align_warp` ×4 → `reslice` ×4 → `softmean` →
//! `slicer` ×3 → `convert` ×3, over `.img`/`.hdr` image pairs.

use crate::trace::{Trace, TraceEvent};

/// Tuning knobs for the challenge workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChallengeParams {
    /// Number of pipeline runs (image sets processed).
    pub runs: usize,
    /// Brain-image size (.img payload).
    pub img_bytes: u64,
    /// Lookup getattrs per run (s3fs chatter).
    pub stats_per_run: usize,
    /// Native CPU time per stage, microseconds.
    pub compute_micros_per_stage: u64,
}

impl Default for ChallengeParams {
    fn default() -> Self {
        ChallengeParams {
            runs: 25,
            img_bytes: 2_400_000,
            stats_per_run: 207,
            compute_micros_per_stage: 900_000,
        }
    }
}

impl ChallengeParams {
    /// A scaled-down variant for fast tests.
    pub fn small() -> ChallengeParams {
        ChallengeParams {
            runs: 1,
            img_bytes: 100_000,
            stats_per_run: 10,
            compute_micros_per_stage: 1_000,
        }
    }
}

/// Generates the fMRI challenge trace.
pub fn challenge(p: ChallengeParams) -> Trace {
    let mut t = Trace::new("challenge");
    for r in 0..p.runs {
        let base = format!("/fmri/run{r:02}");
        let pid0 = 10_000 + (r as u64) * 100;
        let mut stats_left = p.stats_per_run;
        let mut stat = |t: &mut Trace, pid: u64, tag: &str| {
            if stats_left > 0 {
                stats_left -= 1;
                t.push(TraceEvent::Stat {
                    pid,
                    path: format!("{base}/.lk/{tag}"),
                });
            }
        };

        // Stage 1: align_warp ×4 — anatomy vs reference -> warp params.
        for i in 0..4 {
            let pid = pid0 + i;
            t.push(TraceEvent::Exec {
                pid,
                name: "align_warp".into(),
                argv: vec![
                    "align_warp".into(),
                    format!("{base}/anatomy{i}.img"),
                    "/fmri/reference.img".into(),
                    format!("{base}/warp{i}.warp"),
                    "-m".into(),
                    "12".into(),
                ],
                env_bytes: 2_000,
                exe: Some("/usr/bin/align_warp".into()),
            });
            for tag in ["a", "b", "c", "d", "e", "f"] {
                stat(&mut t, pid, &format!("aw{i}{tag}"));
            }
            t.push(TraceEvent::Read {
                pid,
                path: format!("{base}/anatomy{i}.img"),
                bytes: p.img_bytes,
            });
            t.push(TraceEvent::Read {
                pid,
                path: format!("{base}/anatomy{i}.hdr"),
                bytes: 1_024,
            });
            t.push(TraceEvent::Read {
                pid,
                path: "/fmri/reference.img".into(),
                bytes: p.img_bytes,
            });
            t.push(TraceEvent::Read {
                pid,
                path: "/fmri/reference.hdr".into(),
                bytes: 1_024,
            });
            t.push(TraceEvent::Compute {
                micros: p.compute_micros_per_stage,
            });
            let warp = format!("{base}/warp{i}.warp");
            t.push(TraceEvent::Open {
                pid,
                path: warp.clone(),
            });
            t.push(TraceEvent::Write {
                pid,
                path: warp.clone(),
                bytes: 100_000,
            });
            t.push(TraceEvent::Close { pid, path: warp });
            t.push(TraceEvent::Exit { pid });
        }

        // Stage 2: reslice ×4 — warp params -> resliced image pairs.
        for i in 0..4 {
            let pid = pid0 + 10 + i;
            t.push(TraceEvent::Exec {
                pid,
                name: "reslice".into(),
                argv: vec![
                    "reslice".into(),
                    format!("{base}/warp{i}.warp"),
                    format!("{base}/resliced{i}"),
                ],
                env_bytes: 1_800,
                exe: Some("/usr/bin/reslice".into()),
            });
            for tag in ["a", "b", "c", "d", "e", "f"] {
                stat(&mut t, pid, &format!("rs{i}{tag}"));
            }
            t.push(TraceEvent::Read {
                pid,
                path: format!("{base}/warp{i}.warp"),
                bytes: 100_000,
            });
            t.push(TraceEvent::Read {
                pid,
                path: format!("{base}/anatomy{i}.img"),
                bytes: p.img_bytes,
            });
            t.push(TraceEvent::Compute {
                micros: p.compute_micros_per_stage,
            });
            for (ext, bytes) in [("img", p.img_bytes), ("hdr", 1_024)] {
                let path = format!("{base}/resliced{i}.{ext}");
                t.push(TraceEvent::Open {
                    pid,
                    path: path.clone(),
                });
                t.push(TraceEvent::Write {
                    pid,
                    path: path.clone(),
                    bytes,
                });
                t.push(TraceEvent::Close { pid, path });
            }
            t.push(TraceEvent::Exit { pid });
        }

        // Stage 3: softmean — average the four resliced images.
        let mean_pid = pid0 + 20;
        t.push(TraceEvent::Exec {
            pid: mean_pid,
            name: "softmean".into(),
            argv: vec![
                "softmean".into(),
                format!("{base}/atlas"),
                "y".into(),
                "null".into(),
            ],
            env_bytes: 1_700,
            exe: Some("/usr/bin/softmean".into()),
        });
        for i in 0..4 {
            t.push(TraceEvent::Read {
                pid: mean_pid,
                path: format!("{base}/resliced{i}.img"),
                bytes: p.img_bytes,
            });
            stat(&mut t, mean_pid, &format!("sm{i}"));
        }
        t.push(TraceEvent::Compute {
            micros: p.compute_micros_per_stage,
        });
        for (ext, bytes) in [("img", p.img_bytes), ("hdr", 1_024)] {
            let path = format!("{base}/atlas.{ext}");
            t.push(TraceEvent::Open {
                pid: mean_pid,
                path: path.clone(),
            });
            t.push(TraceEvent::Write {
                pid: mean_pid,
                path: path.clone(),
                bytes,
            });
            t.push(TraceEvent::Close {
                pid: mean_pid,
                path,
            });
        }
        t.push(TraceEvent::Exit { pid: mean_pid });

        // Stages 4+5: slicer + convert along three axes.
        for (d, axis) in ["x", "y", "z"].iter().enumerate() {
            let slicer_pid = pid0 + 30 + d as u64;
            let slice = format!("{base}/atlas-{axis}.pgm");
            t.push(TraceEvent::Exec {
                pid: slicer_pid,
                name: "slicer".into(),
                argv: vec![
                    "slicer".into(),
                    format!("{base}/atlas.img"),
                    format!("-{axis}"),
                    ".5".into(),
                    slice.clone(),
                ],
                env_bytes: 1_600,
                exe: Some("/usr/bin/slicer".into()),
            });
            for tag in ["a", "b", "c"] {
                stat(&mut t, slicer_pid, &format!("sl{axis}{tag}"));
            }
            t.push(TraceEvent::Read {
                pid: slicer_pid,
                path: format!("{base}/atlas.img"),
                bytes: p.img_bytes,
            });
            t.push(TraceEvent::Compute {
                micros: p.compute_micros_per_stage / 3,
            });
            t.push(TraceEvent::Open {
                pid: slicer_pid,
                path: slice.clone(),
            });
            t.push(TraceEvent::Write {
                pid: slicer_pid,
                path: slice.clone(),
                bytes: 400_000,
            });
            t.push(TraceEvent::Close {
                pid: slicer_pid,
                path: slice.clone(),
            });
            t.push(TraceEvent::Exit { pid: slicer_pid });

            let convert_pid = pid0 + 40 + d as u64;
            let gif = format!("{base}/atlas-{axis}.gif");
            t.push(TraceEvent::Exec {
                pid: convert_pid,
                name: "convert".into(),
                argv: vec!["convert".into(), slice.clone(), gif.clone()],
                env_bytes: 1_500,
                exe: Some("/usr/bin/convert".into()),
            });
            for tag in ["a", "b", "c"] {
                stat(&mut t, convert_pid, &format!("cv{axis}{tag}"));
            }
            t.push(TraceEvent::Read {
                pid: convert_pid,
                path: slice.clone(),
                bytes: 400_000,
            });
            t.push(TraceEvent::Compute {
                micros: p.compute_micros_per_stage / 6,
            });
            t.push(TraceEvent::Open {
                pid: convert_pid,
                path: gif.clone(),
            });
            t.push(TraceEvent::Write {
                pid: convert_pid,
                path: gif.clone(),
                bytes: 150_000,
            });
            t.push(TraceEvent::Close {
                pid: convert_pid,
                path: gif,
            });
            t.push(TraceEvent::Exit { pid: convert_pid });
        }

        // Remaining lookup chatter attributed to the pipeline driver.
        while stats_left > 0 {
            stats_left -= 1;
            t.push(TraceEvent::Stat {
                pid: pid0,
                path: format!("{base}/.lk/tail{stats_left}"),
            });
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_characteristics() {
        let t = challenge(ChallengeParams::default());
        let s = t.stats();
        // 20 written files per run (4 warps + 8 resliced + 2 atlas + 3
        // slices + 3 gifs).
        assert_eq!(s.files_written, 25 * 20);
        // Baseline ops near the paper's 6,179.
        let baseline = s.lookups + s.closes;
        assert!((5_800..6_600).contains(&baseline), "got {baseline}");
        // ≈350 MB of uploads: Table 4's ≈$0.27-0.30 at 2009 prices.
        let mb = s.bytes_written as f64 / 1e6;
        assert!((300.0..420.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn deepest_workload_path_length_eleven() {
        let run = crate::offline::collect(&challenge(ChallengeParams::small()));
        let g = &run.graph;
        let gif = run
            .nodes
            .iter()
            .find(|n| n.name.as_deref().is_some_and(|n| n.ends_with(".gif")))
            .unwrap();
        let depth = g.depth_from(gif.id);
        assert!(
            (10..=13).contains(&depth),
            "expected max path ≈11 (paper), got {depth}"
        );
        assert!(g.find_cycle().is_none());
    }
}
