//! Offline provenance collection (§5.1's microbenchmark setup).
//!
//! "To isolate the protocol throughput from the application and provenance
//! collection overheads, we ran the Blast benchmark on an unmodified PASS
//! system and captured the provenance. We then built a tool that uploaded
//! the data objects and their provenance to the cloud using each
//! protocol." This module is the capture half: replay a trace through the
//! PASS observer **without any cloud or clock**, returning every
//! provenance node and the final state of every written file.

use std::collections::BTreeMap;

use cloudprov_pass::{FlushNode, Observer, Pid, PipeId, ProcessInfo, ProvGraph};

use crate::trace::{synthetic_env, Trace, TraceEvent};

/// Final state of one file produced by the workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OfflineFile {
    /// Path within the workload namespace.
    pub path: String,
    /// Final size in bytes.
    pub size: u64,
    /// Final content fingerprint.
    pub fingerprint: u64,
    /// True if the workload wrote this file (false: read-only input).
    /// Only written files are data objects the upload tool pushes.
    pub written: bool,
}

/// Captured run: provenance nodes (in flush order, ancestors before
/// descendants within each closure) plus final file states.
#[derive(Clone, Debug)]
pub struct OfflineRun {
    /// All flushed provenance nodes.
    pub nodes: Vec<FlushNode>,
    /// All files the workload wrote, with final sizes.
    pub files: Vec<OfflineFile>,
    /// Ground-truth DAG.
    pub graph: ProvGraph,
}

impl OfflineRun {
    /// Total wire-encoded provenance bytes.
    pub fn provenance_bytes(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| &n.records)
            .map(|r| r.wire_len())
            .sum()
    }

    /// Total file payload bytes.
    pub fn data_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }
}

fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Replays `trace` through a PASS observer only (no cloud, no virtual
/// time), capturing provenance and file states.
pub fn collect(trace: &Trace) -> OfflineRun {
    let mut obs = Observer::new(0xC0FFEE);
    // size, fp, dirty, ever-written
    let mut files: BTreeMap<String, (u64, u64, bool, bool)> = BTreeMap::new();
    let mut nodes: Vec<FlushNode> = Vec::new();
    for (tick, event) in trace.events.iter().enumerate() {
        let clock = tick as u64 + 1;
        match event {
            TraceEvent::Exec {
                pid,
                name,
                argv,
                env_bytes,
                exe,
            } => {
                obs.exec(
                    Pid(*pid),
                    ProcessInfo {
                        name: name.clone(),
                        argv: argv.clone(),
                        env: synthetic_env(*env_bytes, pid ^ name.len() as u64),
                        exe_path: exe.clone(),
                        exec_time_micros: clock,
                    },
                );
            }
            TraceEvent::Fork { parent, child } => {
                obs.fork(Pid(*parent), Pid(*child));
            }
            TraceEvent::Read { pid, path, bytes } => {
                files.entry(path.clone()).or_insert((
                    *bytes,
                    mix(0x5EED, path.len() as u64),
                    false,
                    false,
                ));
                obs.read(Pid(*pid), path);
            }
            TraceEvent::Write { pid, path, bytes } => {
                let entry = files.entry(path.clone()).or_insert((
                    0,
                    mix(0xF11E, path.len() as u64),
                    false,
                    false,
                ));
                entry.0 += bytes;
                entry.1 = mix(entry.1, bytes ^ entry.0);
                entry.2 = true;
                entry.3 = true;
                obs.write(Pid(*pid), path, entry.1);
            }
            TraceEvent::Close { pid, path } => {
                let _ = pid;
                if files.get(path).is_some_and(|f| f.2) {
                    nodes.extend(obs.flush_closure(path));
                    if let Some(f) = files.get_mut(path) {
                        f.2 = false;
                    }
                }
            }
            TraceEvent::PipeCreate { id } => {
                obs.pipe_create(PipeId(*id));
            }
            TraceEvent::PipeWrite { pid, id } => obs.pipe_write(Pid(*pid), PipeId(*id)),
            TraceEvent::PipeRead { pid, id } => obs.pipe_read(Pid(*pid), PipeId(*id)),
            TraceEvent::Unlink { pid, path } => {
                let _ = pid;
                files.remove(path);
                obs.unlink(path);
            }
            TraceEvent::Rename { pid, from, to } => {
                let _ = pid;
                if let Some(f) = files.remove(from) {
                    files.insert(to.clone(), f);
                }
                obs.rename(from, to);
            }
            TraceEvent::Exit { pid } => obs.exit(Pid(*pid)),
            // No cloud and no clock in offline mode.
            TraceEvent::Open { .. }
            | TraceEvent::Stat { .. }
            | TraceEvent::Compute { .. }
            | TraceEvent::MemBound { .. } => {}
        }
    }
    // Flush anything still dirty.
    let dirty: Vec<String> = files
        .iter()
        .filter(|(_, (_, _, d, _))| *d)
        .map(|(p, _)| p.clone())
        .collect();
    for path in dirty {
        nodes.extend(obs.flush_closure(&path));
    }
    let file_list = files
        .iter()
        .map(|(path, (size, fp, _, written))| OfflineFile {
            path: path.clone(),
            size: *size,
            fingerprint: *fp,
            written: *written,
        })
        .collect();
    OfflineRun {
        nodes,
        files: file_list,
        graph: obs.graph().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::{blast, BlastParams};

    #[test]
    fn collect_produces_nodes_and_files() {
        let run = collect(&blast(BlastParams::small()));
        assert!(!run.nodes.is_empty());
        assert!(!run.files.is_empty());
        assert!(run.provenance_bytes() > 0);
        assert!(run.data_bytes() > 0);
        assert!(run.graph.find_cycle().is_none());
    }

    #[test]
    fn every_flushed_node_has_graph_presence() {
        let run = collect(&blast(BlastParams::small()));
        for n in &run.nodes {
            assert!(run.graph.node(n.id).is_some(), "missing {:?}", n.id);
        }
    }

    #[test]
    fn closure_order_is_ancestors_first_per_flush() {
        let run = collect(&blast(BlastParams::small()));
        // Duplicates across closures are impossible: each node flushes once
        // unless re-dirtied with NEW records.
        let mut seen = std::collections::BTreeSet::new();
        for n in &run.nodes {
            if !n.records.is_empty() {
                // A node may appear again only with fresh records.
                seen.insert((n.id, n.records.len()));
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn blast_full_scale_provenance_volume() {
        let run = collect(&blast(BlastParams::default()));
        let mb = run.provenance_bytes() as f64 / 1e6;
        // Table 3 implies 2-6 MB of provenance for the Blast upload set.
        assert!((1.5..8.0).contains(&mb), "got {mb} MB of provenance");
    }
}
