//! The CVSROOT nightly-backup workload (§5).
//!
//! "This workload simulates nightly backups of a CVS repository by
//! extracting nightly snapshots from 30 days of our own repository,
//! creating a tarball for each night, and uploading the 30 snapshots to
//! AWS. The provenance tree for this workload is nearly flat with just the
//! program cp as the ancestor of the stored archives. The workload is IO
//! intensive, has negligible compute time, and S3fs performs 240
//! operations under this workload."

use crate::trace::{Trace, TraceEvent};

/// Tuning knobs for the nightly workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NightlyParams {
    /// Number of nightly snapshots (paper: 30 days).
    pub snapshots: usize,
    /// Tarball size per snapshot. 350 MB × 30 ≈ 10.5 GB total, which at
    /// 2009's $0.10/GB transfer-in reproduces Table 4's ≈$1.05.
    pub snapshot_bytes: u64,
    /// Directory-scan `getattr`s per snapshot; 6 + open + close lands the
    /// baseline at the paper's 240 S3 operations.
    pub stats_per_snapshot: usize,
}

impl Default for NightlyParams {
    fn default() -> Self {
        NightlyParams {
            snapshots: 30,
            snapshot_bytes: 350 << 20,
            stats_per_snapshot: 6,
        }
    }
}

impl NightlyParams {
    /// A scaled-down variant for fast tests (3 × 2 MB).
    pub fn small() -> NightlyParams {
        NightlyParams {
            snapshots: 3,
            snapshot_bytes: 2 << 20,
            stats_per_snapshot: 6,
        }
    }
}

/// Generates the nightly-backup trace.
pub fn nightly(params: NightlyParams) -> Trace {
    let mut t = Trace::new("nightly");
    for day in 0..params.snapshots {
        let pid = 1_000 + day as u64;
        let tarball = format!("/backup/cvsroot-day{day:02}.tar");
        t.push(TraceEvent::Exec {
            pid,
            name: "cp".into(),
            argv: vec!["cp".into(), "-a".into(), "/cvsroot".into(), tarball.clone()],
            env_bytes: 700,
            exe: Some("/bin/cp".into()),
        });
        for s in 0..params.stats_per_snapshot {
            t.push(TraceEvent::Stat {
                pid,
                path: format!("/backup/.scan{s}"),
            });
        }
        // cp reads the repository (flat ancestry: one source node).
        t.push(TraceEvent::Read {
            pid,
            path: "/cvsroot/repo".into(),
            bytes: params.snapshot_bytes,
        });
        t.push(TraceEvent::Open {
            pid,
            path: tarball.clone(),
        });
        t.push(TraceEvent::Write {
            pid,
            path: tarball.clone(),
            bytes: params.snapshot_bytes,
        });
        t.push(TraceEvent::Close { pid, path: tarball });
        t.push(TraceEvent::Exit { pid });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_characteristics() {
        let t = nightly(NightlyParams::default());
        let s = t.stats();
        assert_eq!(s.files_written, 30);
        assert_eq!(s.bytes_written, 30 * (350 << 20));
        // Baseline ops = opens + closes-as-PUT + stats = 30 + 30 + 180.
        assert_eq!(s.lookups + s.closes, 240);
        assert_eq!(s.compute_micros, 0, "negligible compute time");
    }

    #[test]
    fn flat_provenance_single_ancestor() {
        let run = crate::offline::collect(&nightly(NightlyParams::small()));
        // Each tarball's ancestry: cp process + the one source node.
        let g = &run.graph;
        let tarball = run
            .nodes
            .iter()
            .find(|n| n.name.as_deref() == Some("/backup/cvsroot-day00.tar"))
            .unwrap();
        assert!(g.depth_from(tarball.id) <= 3, "nearly flat tree");
    }
}
