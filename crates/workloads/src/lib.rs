//! # cloudprov-workloads — the paper's evaluation workloads
//!
//! Generators for the three workloads of §5 — the CVSROOT
//! [`nightly`](nightly::nightly) backup (flat provenance, IO-bound), the
//! NIH-style [`blast`](blast::blast) job (depth-5 provenance, mixed
//! compute/IO, the microbenchmark's upload set), and the fMRI provenance
//! [`challenge`](challenge::challenge) (depth-11 pipeline) — plus the
//! Linux-compile provenance stream for the Table 2 service throughput
//! test, a trace [`driver`] that replays workloads through PA-S3fs, an
//! [`offline`] collector reproducing the paper's capture-then-upload
//! microbenchmark methodology, and the shared [`testkit`] random-workload
//! generator that property tests, integration tests and the chaos
//! explorer all replay from one seeded event space, and the [`fleet`]
//! driver that points hundreds of simulated tenant clients at the
//! sharded commit plane (`cloudprov-fleet`) and measures its scaling.

#![warn(missing_docs)]

pub mod blast;
pub mod challenge;
pub mod driver;
pub mod fleet;
pub mod linux_compile;
pub mod nightly;
pub mod offline;
pub mod readserve;
pub mod testkit;
pub mod trace;

pub use blast::{blast, BlastParams};
pub use challenge::{challenge, ChallengeParams};
pub use driver::{replay, ReplaySummary};
pub use fleet::{run_fleet, FleetParams, FleetReport, TenantUsage};
pub use linux_compile::linux_compile_provenance;
pub use nightly::{nightly, NightlyParams};
pub use offline::{collect, OfflineFile, OfflineRun};
pub use readserve::{run_readserve, ReadServeParams, ReadServeReport};
pub use testkit::{random_script, replay_fs_prefixed, FsReplay, ScriptEvent};
pub use trace::{synthetic_env, Trace, TraceEvent, TraceStats};
