//! [`run_readserve`]: hundreds of simulated query tenants against a
//! store a live fleet is still committing to.
//!
//! The write side is a small [`Fleet`] (sharded WALs, daemon pool, push
//! delivery): W writers each run a *named program* over several rounds,
//! so every round commits new lineage for the programs the readers
//! chase. The read side is the memory-resident
//! [`AncestryCache`](cloudprov_query::AncestryCache), shared by every
//! query tenant and kept coherent by the same commit feed the daemons
//! publish — the pool's event sink fans out to the cache and to the
//! driver's monitor subscription.
//!
//! Round 0 is committed and quiesced first (there is something to
//! query), then Q query tenants run mixed Q.1–Q.4 scripts *while* the
//! writers keep committing rounds 1..R. Every cache **hit** is verified
//! on the spot against the uncached index plan; a mismatch is retried
//! across a settle window (a racing commit explains it — the
//! invalidation event lands and the next cached read rehydrates) and
//! only counted as a **stale result** when it persists, which the gate
//! requires to be zero. After the plane drains, a final quiescent pass
//! replays every program's Q.3/Q.4 through the warm cache and compares
//! against ground truth evaluated locally over the base records.
//!
//! All percentiles come from one [`Registry`] — the same convention as
//! the fleet benchmark — and the cache's own counters are re-emitted as
//! `query.cache.{hit,miss,evict,invalidate}`.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use cloudprov_cloud::{AwsProfile, CloudEnv, TenantId};
use cloudprov_core::{Protocol, ProtocolConfig, ProvenanceClient, StorageProtocol};
use cloudprov_feed::{fanout, Predicate, Subscriptions};
use cloudprov_fleet::{Fleet, FleetConfig};
use cloudprov_fs::{LocalIoParams, PaS3fs};
use cloudprov_pass::{Pid, ProcessInfo};
use cloudprov_query::source::local;
use cloudprov_query::{
    AncestryCache, CacheConfig, CacheOutcome, CacheStats, Mode, Plan, QueryEngine, QueryOutput,
};
use cloudprov_sim::Sim;
use cloudprov_trace::metrics::Registry;

use crate::fleet::mix64;

/// Parameters of one concurrent read-serving run.
#[derive(Clone, Debug)]
pub struct ReadServeParams {
    /// Simulated query tenants (each with its own metered engine).
    pub query_tenants: usize,
    /// Queries per tenant (mixed Q.1–Q.4, seed-derived).
    pub queries_per_tenant: usize,
    /// Writer clients committing concurrently with the readers.
    pub writers: usize,
    /// Distinct program names the writers run (round-robin; must be
    /// ≤ `writers` or the surplus programs never execute).
    pub programs: usize,
    /// Writer rounds committed *during* the query phase (round 0, the
    /// warmup corpus, is always committed and quiesced first).
    pub rounds: usize,
    /// WAL shards.
    pub shards: u32,
    /// Commit-daemon workers.
    pub daemons: usize,
    /// Master seed; equal seeds reproduce bit-identical reports.
    pub seed: u64,
    /// Feed fallback cadence (and the verify settle window).
    pub poll_interval: Duration,
    /// Cloud profile. The default is `calibrated_strict`: 2009 service
    /// latencies with strict consistency, so the uncached verifier plan
    /// is exact and every mismatch is attributable to the cache.
    pub profile: AwsProfile,
}

impl Default for ReadServeParams {
    fn default() -> ReadServeParams {
        ReadServeParams {
            query_tenants: 120,
            queries_per_tenant: 6,
            writers: 8,
            programs: 6,
            rounds: 3,
            shards: 4,
            daemons: 2,
            seed: 0,
            poll_interval: Duration::from_secs(2),
            profile: AwsProfile::calibrated_strict(Default::default()),
        }
    }
}

impl ReadServeParams {
    /// The smoke-scale shape CI runs on every push.
    pub fn smoke(seed: u64) -> ReadServeParams {
        ReadServeParams {
            query_tenants: 24,
            queries_per_tenant: 4,
            writers: 4,
            programs: 3,
            rounds: 2,
            shards: 2,
            daemons: 2,
            seed,
            ..ReadServeParams::default()
        }
    }
}

/// Everything one concurrent read-serving run measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadServeReport {
    /// Echo of the run shape.
    pub query_tenants: usize,
    /// Echo of the run shape.
    pub writers: usize,
    /// Echo of the run shape.
    pub programs: usize,
    /// Echo of the run shape.
    pub rounds: usize,
    /// Queries issued, total.
    pub queries: u64,
    /// Per-kind counts `[Q.1, Q.2, Q.3, Q.4]`.
    pub q_counts: [u64; 4],
    /// Final cache counters (hits, misses, evictions, invalidations…).
    pub cache: CacheStats,
    /// `hits / (hits + misses)` over the cached-eligible queries.
    pub hit_rate: f64,
    /// Median in-memory (cache-hit) Q.3/Q.4 latency.
    pub warm_p50: Duration,
    /// 99th-percentile cache-hit latency.
    pub warm_p99: Duration,
    /// Median cold (hydrating miss) Q.3/Q.4 latency.
    pub cold_p50: Duration,
    /// 99th-percentile cold latency.
    pub cold_p99: Duration,
    /// Hit / miss samples behind the percentiles.
    pub warm_samples: usize,
    /// Cold samples behind the percentiles.
    pub cold_samples: usize,
    /// `cold_p50 / warm_p50`, warm clamped to one sim tick (a hit costs
    /// zero virtual time — the clamp keeps the ratio finite).
    pub cached_speedup: f64,
    /// Cache hits verified against the uncached index plan.
    pub verified: u64,
    /// Verifications that disagreed after the settle retries (a served
    /// stale result — must be 0).
    pub stale_results: u64,
    /// Verify retries taken (racing commits, resolved by settling).
    pub verify_retries: u64,
    /// Queries that returned an error (must be 0).
    pub query_errors: u64,
    /// Writers that died or failed to sync (must be 0).
    pub writer_errors: u64,
    /// Transactions the pool committed (with multiplicity).
    pub committed: u64,
    /// Distinct transactions committed.
    pub unique_committed: u64,
    /// Transactions committed more than once (must be 0).
    pub double_commits: u64,
    /// WAL messages left after the quiesce deadline (must be 0).
    pub wal_leftover: usize,
    /// Programs checked by the final quiescent ground-truth pass.
    pub ground_truth_programs: usize,
    /// Warm cached results that disagreed with ground truth evaluated
    /// locally over the base records (must be 0).
    pub ground_truth_mismatches: u64,
    /// Virtual time for the whole run.
    pub elapsed: Duration,
    /// Queries per virtual second over the concurrent phase.
    pub query_throughput: f64,
}

impl ReadServeReport {
    /// Coherence and health violations; empty means the run was clean.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.stale_results > 0 {
            v.push(format!(
                "{} stale cached results served",
                self.stale_results
            ));
        }
        if self.ground_truth_mismatches > 0 {
            v.push(format!(
                "{} warm results disagree with ground truth",
                self.ground_truth_mismatches
            ));
        }
        if self.cache.gaps > 0 {
            v.push(format!("{} feed gaps poisoned the cache", self.cache.gaps));
        }
        if self.query_errors > 0 {
            v.push(format!("{} queries errored", self.query_errors));
        }
        if self.writer_errors > 0 {
            v.push(format!("{} writers died", self.writer_errors));
        }
        if self.double_commits > 0 {
            v.push(format!(
                "{} double-committed transactions",
                self.double_commits
            ));
        }
        if self.wal_leftover > 0 {
            v.push(format!(
                "{} WAL messages never committed",
                self.wal_leftover
            ));
        }
        if self.warm_samples == 0 {
            v.push("no query ever hit the cache".into());
        }
        v
    }
}

/// One writer's round: a fresh process of the writer's program reads the
/// previous round's first output (lineage deepens every round) and
/// writes two new files.
fn writer_round(fs: &PaS3fs, w: usize, programs: usize, round: usize) -> bool {
    let prog = format!("prog-{}", w % programs.max(1));
    let pid = Pid((w as u64) * 1009 + round as u64 + 1);
    fs.exec(
        pid,
        ProcessInfo {
            name: prog,
            ..Default::default()
        },
    );
    if round > 0 {
        fs.read(pid, &format!("/w{w}/out-{}-0", round - 1), 8);
    }
    for i in 0..2 {
        let path = format!("/w{w}/out-{round}-{i}");
        fs.write(pid, &path, 16);
        if fs.close(pid, &path).is_err() {
            return false;
        }
    }
    true
}

struct TenantOutcome {
    counts: [u64; 4],
    warm: Vec<Duration>,
    cold: Vec<Duration>,
    verified: u64,
    stale: u64,
    retries: u64,
    errors: u64,
}

/// Runs one cached-eligible query and returns the output (so hit/miss
/// latency attribution and verification share one execution).
fn run_q(engine: &QueryEngine, q: usize, prog: &str) -> Result<QueryOutput, ()> {
    let r = match q {
        3 => engine.q3_outputs_of(prog, Mode::Sequential),
        _ => engine.q4_descendants_of(prog, Mode::Sequential),
    };
    r.map_err(|_| ())
}

/// Verifies a cache hit against the uncached index plan, retrying
/// across settle windows while racing commits explain the difference.
/// Returns `(verified_clean, retries)`.
fn verify_hit(
    env: &CloudEnv,
    engine: &QueryEngine,
    q: usize,
    prog: &str,
    settle: Duration,
) -> (bool, u64) {
    let mut retries = 0u64;
    for attempt in 0..4 {
        // Re-read BOTH sides each attempt: after an invalidation event
        // lands, the cached read rehydrates fresh and the sides agree.
        let got = run_q(engine, q, prog);
        let truth = run_q(&engine.with_plan_ref(Plan::Index), q, prog);
        match (got, truth) {
            (Ok(g), Ok(t)) => {
                let g: BTreeSet<_> = g.nodes.iter().copied().collect();
                let t: BTreeSet<_> = t.nodes.iter().copied().collect();
                if g == t {
                    return (true, retries);
                }
            }
            _ => return (false, retries),
        }
        if attempt + 1 < 4 {
            retries += 1;
            env.sim().sleep(settle);
        }
    }
    (false, retries)
}

/// Drives one complete concurrent read-serving run. Pure function of
/// `params` — the same parameters reproduce the identical report.
#[allow(clippy::too_many_lines)]
pub fn run_readserve(params: &ReadServeParams) -> ReadServeReport {
    let sim = Sim::new();
    let mut profile = params.profile.clone();
    profile.seed = params.seed;
    let env = CloudEnv::new(&sim, profile);
    let protocol_config = ProtocolConfig {
        feed: true,
        ..ProtocolConfig::default()
    };
    let fleet = Fleet::provision(
        &env,
        protocol_config.clone(),
        FleetConfig {
            shards: params.shards,
            lease_ttl: Duration::from_secs(120),
            max_shard_depth: 64,
            admission_poll: Duration::from_millis(200),
            push: true,
        },
    );
    let pool = fleet.spawn_pool(params.daemons, params.poll_interval);
    // The read tier: one cache shared by every tenant, invalidated by
    // the same at-least-once commit feed the daemons publish. The sink
    // fans out so the monitor subscription sees the identical stream.
    let cache = Arc::new(AncestryCache::new(
        &sim,
        CacheConfig {
            staleness_guard: env.profile().consistency.max_staleness,
            ..CacheConfig::default()
        },
    ));
    let subs = Subscriptions::new(&sim);
    let monitor = subs
        .subscribe(None, Predicate::All)
        .expect("fresh registry cannot be over quota");
    pool.set_event_sink(fanout(vec![cache.sink(), subs.sink()]));
    cache.attach();
    let t0 = sim.now();

    // Round 0: every writer commits its warmup corpus; quiesce before
    // any query runs so the index has something to serve.
    let warmup: Vec<_> = (0..params.writers)
        .map(|w| {
            let fleet = fleet.clone();
            let params = params.clone();
            sim.spawn(move || {
                let client =
                    Arc::new(fleet.client(&format!("w{w}-warm"), Some(TenantId(w as u32))));
                let fs = PaS3fs::attach(
                    client.clone(),
                    LocalIoParams::instant(),
                    mix64(params.seed ^ mix64(0xA11C_E000 ^ w as u64)),
                );
                let ok = writer_round(&fs, w, params.programs, 0);
                (ok && client.sync().is_ok()) as u64
            })
        })
        .collect();
    let mut writer_errors =
        params.writers as u64 - warmup.into_iter().map(|h| h.join()).sum::<u64>();
    let deadline = sim.now() + Duration::from_secs(24 * 3600);
    while fleet.total_depth() > 0 && sim.now() < deadline {
        let _ = monitor.next_timeout(params.poll_interval);
    }

    // The read-side store handle (feed state stays the writers').
    let reader = ProvenanceClient::builder(Protocol::P3)
        .config(ProtocolConfig {
            feed: false,
            ..protocol_config.clone()
        })
        .queue("readserve-reader")
        .build(&env);
    let store = reader.provenance_store().expect("P3 has a store");
    let data_bucket = reader.data_bucket().to_string();

    // Concurrent phase: writers keep committing rounds 1..R while Q
    // query tenants issue mixed Q.1–Q.4 against the same store.
    let q_t0 = sim.now();
    let live_writers: Vec<_> = (0..params.writers)
        .map(|w| {
            let fleet = fleet.clone();
            let env = env.clone();
            let params = params.clone();
            sim.spawn(move || {
                let client =
                    Arc::new(fleet.client(&format!("w{w}-live"), Some(TenantId(w as u32))));
                let fs = PaS3fs::attach(
                    client.clone(),
                    LocalIoParams::instant(),
                    mix64(params.seed ^ mix64(0xB0B0_0000 ^ w as u64)),
                );
                let mut ok = true;
                for r in 1..=params.rounds {
                    // Sleep first: the round's commits land mid-phase,
                    // after tenants have populated the cache — so the
                    // feed actually invalidates resident entries.
                    env.sim().sleep(Duration::from_secs(45));
                    ok &= writer_round(&fs, w, params.programs, r);
                }
                (ok && client.sync().is_ok()) as u64
            })
        })
        .collect();
    let tenants: Vec<_> = (0..params.query_tenants)
        .map(|t| {
            let env = env.clone();
            let store = store.clone();
            let data_bucket = data_bucket.clone();
            let cache = cache.clone();
            let params = params.clone();
            sim.spawn(move || {
                let engine = QueryEngine::new(&env, store, &data_bucket)
                    .with_tenant(TenantId(1000 + t as u32))
                    .with_cache(cache);
                let mut rng = mix64(params.seed ^ mix64(0x0F00_D000 ^ t as u64));
                let mut out = TenantOutcome {
                    counts: [0; 4],
                    warm: Vec::new(),
                    cold: Vec::new(),
                    verified: 0,
                    stale: 0,
                    retries: 0,
                    errors: 0,
                };
                for _ in 0..params.queries_per_tenant {
                    rng = mix64(rng);
                    env.sim().sleep(Duration::from_millis(rng % 20_000));
                    rng = mix64(rng);
                    let roll = rng % 100;
                    rng = mix64(rng);
                    let prog = format!("prog-{}", rng as usize % params.programs.max(1));
                    if roll < 4 {
                        out.counts[0] += 1;
                        if engine.q1_all(Mode::Sequential).is_err() {
                            out.errors += 1;
                        }
                    } else if roll < 12 {
                        out.counts[1] += 1;
                        rng = mix64(rng);
                        let w = rng as usize % params.writers.max(1);
                        // A round-0 key: committed before the phase began.
                        if engine.q2_object(&format!("w{w}/out-0-0")).is_err() {
                            out.errors += 1;
                        }
                    } else {
                        let q = if roll < 56 { 3 } else { 4 };
                        out.counts[q - 1] += 1;
                        match run_q(&engine, q, &prog) {
                            Err(()) => out.errors += 1,
                            Ok(r) => match r.plan.cache {
                                Some(CacheOutcome::Hit) => {
                                    out.warm.push(r.metrics.elapsed);
                                    out.verified += 1;
                                    let (ok, retries) =
                                        verify_hit(&env, &engine, q, &prog, params.poll_interval);
                                    out.retries += retries;
                                    if !ok {
                                        out.stale += 1;
                                    }
                                }
                                Some(CacheOutcome::Miss) => out.cold.push(r.metrics.elapsed),
                                _ => {}
                            },
                        }
                    }
                }
                out
            })
        })
        .collect();
    writer_errors +=
        params.writers as u64 - live_writers.into_iter().map(|h| h.join()).sum::<u64>();
    let outcomes: Vec<TenantOutcome> = tenants.into_iter().map(|h| h.join()).collect();
    let query_phase = sim.now().saturating_duration_since(q_t0);

    // Drain the plane, then the quiescent ground-truth pass.
    while fleet.total_depth() > 0 && sim.now() < deadline {
        let _ = monitor.next_timeout(params.poll_interval);
    }
    let wal_leftover = fleet.total_depth();
    let pool_stats = pool.stop();
    sim.sleep(env.profile().consistency.max_staleness + Duration::from_secs(1));

    // Ground truth: base records evaluated locally (never through the
    // index or the cache), compared against a *warm* cached read.
    let gt = QueryEngine::new(&env, store.clone(), &data_bucket).with_cache(cache.clone());
    let raw = gt
        .source(Plan::SdbSelect)
        .all_records(Mode::Sequential)
        .expect("quiescent store reads back");
    let mut ground_truth_mismatches = 0u64;
    for p in 0..params.programs {
        let prog = format!("prog-{p}");
        let procs = local::processes_named(&raw, &prog);
        let (truth_q3, _) = local::direct_outputs(&raw, &procs);
        let truth_q4 = local::descendants(&raw, &procs);
        for (q, truth) in [(3usize, truth_q3), (4, truth_q4)] {
            let _prime = run_q(&gt, q, &prog);
            match run_q(&gt, q, &prog) {
                Ok(warm) => {
                    if warm.nodes != truth {
                        ground_truth_mismatches += 1;
                    }
                }
                Err(()) => ground_truth_mismatches += 1,
            }
        }
    }
    let elapsed = sim.now().saturating_duration_since(t0);

    // One registry carries every percentile and the cache counters.
    let mut reg = Registry::new();
    let mut counts = [0u64; 4];
    let mut verified = 0u64;
    let mut stale_results = 0u64;
    let mut verify_retries = 0u64;
    let mut query_errors = 0u64;
    for o in &outcomes {
        for (i, c) in o.counts.iter().enumerate() {
            counts[i] += c;
        }
        verified += o.verified;
        stale_results += o.stale;
        verify_retries += o.retries;
        query_errors += o.errors;
        for d in &o.warm {
            reg.record("query.warm", *d);
        }
        for d in &o.cold {
            reg.record("query.cold", *d);
        }
    }
    let stats = cache.stats();
    reg.add("query.cache.hit", stats.hits);
    reg.add("query.cache.miss", stats.misses);
    reg.add("query.cache.evict", stats.evictions);
    reg.add("query.cache.invalidate", stats.invalidations);
    let queries: u64 = counts.iter().sum();
    let warm_p50 = reg.percentile("query.warm", 50.0);
    let cold_p50 = reg.percentile("query.cold", 50.0);
    let served = stats.hits + stats.misses;
    let secs = query_phase.as_secs_f64();
    ReadServeReport {
        query_tenants: params.query_tenants,
        writers: params.writers,
        programs: params.programs,
        rounds: params.rounds,
        queries,
        q_counts: counts,
        hit_rate: if served > 0 {
            stats.hits as f64 / served as f64
        } else {
            0.0
        },
        warm_p50,
        warm_p99: reg.percentile("query.warm", 99.0),
        cold_p50,
        cold_p99: reg.percentile("query.cold", 99.0),
        warm_samples: reg.count("query.warm"),
        cold_samples: reg.count("query.cold"),
        cached_speedup: cold_p50.as_secs_f64()
            / warm_p50.max(Duration::from_micros(1)).as_secs_f64(),
        verified,
        stale_results,
        verify_retries,
        query_errors,
        writer_errors,
        committed: pool_stats.committed,
        unique_committed: pool_stats.unique_committed,
        double_commits: pool_stats.double_commits,
        wal_leftover,
        ground_truth_programs: params.programs,
        ground_truth_mismatches,
        elapsed,
        query_throughput: if secs > 0.0 {
            queries as f64 / secs
        } else {
            0.0
        },
        cache: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReadServeParams {
        ReadServeParams {
            query_tenants: 10,
            queries_per_tenant: 3,
            writers: 3,
            programs: 2,
            rounds: 1,
            shards: 2,
            daemons: 2,
            seed: 11,
            poll_interval: Duration::from_secs(2),
            profile: AwsProfile::instant(),
        }
    }

    #[test]
    fn tiny_readserve_run_is_clean_and_warm() {
        let r = run_readserve(&tiny());
        assert_eq!(r.violations(), Vec::<String>::new(), "{r:?}");
        assert!(r.queries > 0);
        assert!(r.cache.hits > 0, "some query must be served from memory");
        assert!(r.cache.invalidations > 0, "live rounds must invalidate");
        assert_eq!(r.stale_results, 0);
        assert_eq!(r.ground_truth_mismatches, 0);
        assert!(r.hit_rate > 0.0 && r.hit_rate <= 1.0);
        assert!(r.verified > 0, "every hit is verified");
        // A hit costs zero virtual time; a miss pays the store.
        assert!(r.warm_p50 <= r.cold_p50);
    }

    #[test]
    fn readserve_runs_are_deterministic() {
        let a = run_readserve(&tiny());
        let b = run_readserve(&tiny());
        assert_eq!(a, b, "same params + seed must reproduce bit-identically");
    }
}
