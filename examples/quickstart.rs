//! Quickstart: store files with provenance on the (simulated) cloud using
//! P3 through the `ProvenanceClient` facade, read them back with coupling
//! detection, and query their lineage.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use cloudprov::cloud::{AwsProfile, CloudEnv, RunContext};
use cloudprov::fs::{LocalIoParams, PaS3fs};
use cloudprov::pass::{Pid, ProcessInfo};
use cloudprov::query::Mode;
use cloudprov::sim::Sim;
use cloudprov::{Protocol, ProvenanceClient, ProvenanceQueries};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulation and a cloud account (S3 + SimpleDB + SQS).
    let sim = Sim::new();
    let env = CloudEnv::new(&sim, AwsProfile::calibrated(RunContext::default()));

    // 2. One session handle: protocol P3 (data + provenance through an
    //    SQS write-ahead log) behind the pipelined flush path — `close`
    //    enqueues the upload and returns immediately.
    let client = Arc::new(
        ProvenanceClient::builder(Protocol::P3)
            .queue("wal-quickstart")
            .pipelined()
            .build(&env),
    );

    // 3. A provenance-aware file system over the session.
    let fs = PaS3fs::attach(client.clone(), LocalIoParams::default(), 42);

    // 4. Run a tiny pipeline: `transform` reads an input and writes a
    //    result; PASS records the lineage automatically.
    fs.exec(
        Pid(100),
        ProcessInfo {
            name: "transform".into(),
            argv: vec![
                "transform".into(),
                "--normalize".into(),
                "/data/raw.csv".into(),
            ],
            env: vec![("LANG".into(), "C".into())],
            exe_path: Some("/usr/bin/transform".into()),
            ..Default::default()
        },
    );
    fs.read(Pid(100), "/data/raw.csv", 4 << 20);
    fs.write(Pid(100), "/data/clean.csv", 3 << 20);
    let before_close = sim.now();
    fs.close(Pid(100), "/data/clean.csv")?;
    println!(
        "close returned in {:?} of virtual time (upload pipelined in the background)",
        sim.now() - before_close
    );

    // 5. Run the client's commit daemon in the background while other
    //    (virtual) work could proceed, then drain everything: pipeline
    //    barrier + WAL quiescence in one call.
    let daemon = client.commit_daemon().expect("P3 session").clone();
    let daemon_handle = daemon.clone().spawn(Duration::from_secs(2));
    sim.sleep(Duration::from_secs(30));
    client.drain()?;
    daemon_handle.stop();
    println!(
        "commit daemon committed {} transaction(s)",
        daemon.committed_transactions()
    );

    // 6. Read back with data-coupling detection.
    let read = fs.read_back("/data/clean.csv")?;
    println!(
        "read {} bytes, coupling = {:?}",
        read.data.len(),
        read.coupling
    );
    assert!(read.coupling.is_coupled());

    // 7. Query the provenance store — no store plumbing, just
    //    `client.query()`: everything `transform` produced.
    let out = client
        .query()?
        .q3_outputs_of("transform", Mode::Sequential)?;
    println!(
        "files output by 'transform': {} node(s), {} cloud ops, {:?}",
        out.nodes.len(),
        out.metrics.ops,
        out.metrics.elapsed
    );

    // 8. The bill, at 2009 AWS prices.
    println!("total cost: {}", env.cost());
    Ok(())
}
