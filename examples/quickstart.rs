//! Quickstart: store files with provenance on the (simulated) cloud using
//! P3, read them back with coupling detection, and query their lineage.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use cloudprov::cloud::{AwsProfile, CloudEnv, RunContext};
use cloudprov::fs::{LocalIoParams, PaS3fs};
use cloudprov::pass::{Pid, ProcessInfo};
use cloudprov::protocols::{ProtocolConfig, StorageProtocol, P3};
use cloudprov::query::{Mode, QueryEngine};
use cloudprov::sim::Sim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulation and a cloud account (S3 + SimpleDB + SQS).
    let sim = Sim::new();
    let env = CloudEnv::new(&sim, AwsProfile::calibrated(RunContext::default()));

    // 2. Protocol P3: data + provenance through an SQS write-ahead log,
    //    committed asynchronously by a daemon.
    let p3 = P3::new(&env, ProtocolConfig::default(), "wal-quickstart");
    let daemon = Arc::new(p3.commit_daemon());
    let daemon_handle = daemon.clone().spawn(Duration::from_secs(2));

    // 3. A provenance-aware file system over the protocol.
    let fs = PaS3fs::new(
        &sim,
        Arc::new(p3.clone()),
        RunContext::default(),
        LocalIoParams::default(),
        42,
    );

    // 4. Run a tiny pipeline: `transform` reads an input and writes a
    //    result; PASS records the lineage automatically.
    fs.exec(
        Pid(100),
        ProcessInfo {
            name: "transform".into(),
            argv: vec!["transform".into(), "--normalize".into(), "/data/raw.csv".into()],
            env: vec![("LANG".into(), "C".into())],
            exe_path: Some("/usr/bin/transform".into()),
            ..Default::default()
        },
    );
    fs.read(Pid(100), "/data/raw.csv", 4 << 20);
    fs.write(Pid(100), "/data/clean.csv", 3 << 20);
    fs.close(Pid(100), "/data/clean.csv")?;
    println!("flushed /data/clean.csv through {}", fs.protocol().name());

    // 5. Let the commit daemon finish (virtual time passes instantly).
    sim.sleep(Duration::from_secs(30));
    daemon_handle.stop();
    println!("commit daemon committed {} transaction(s)", daemon.committed_transactions());

    // 6. Read back with data-coupling detection.
    let read = fs.read_back("/data/clean.csv")?;
    println!(
        "read {} bytes, coupling = {:?}",
        read.data.len(),
        read.coupling
    );
    assert!(read.coupling.is_coupled());

    // 7. Query the provenance store: everything `transform` produced.
    let store = p3.provenance_store().expect("P3 stores provenance");
    let engine = QueryEngine::new(&env, store, "data");
    let out = engine.q3_outputs_of("transform", Mode::Sequential)?;
    println!(
        "files output by 'transform': {} node(s), {} cloud ops, {:?}",
        out.nodes.len(),
        out.metrics.ops,
        out.metrics.elapsed
    );

    // 8. The bill, at 2009 AWS prices.
    println!("total cost: {}", env.cost());
    Ok(())
}
