//! The paper's §2.2 "Improving Text Search Results" use case (after Shah
//! et al.): start from content-search hits, then traverse the provenance
//! DAG for `P` rounds, boosting files whose provenance neighbourhood
//! contains other relevant files — and pulling in related files the
//! content search missed entirely.
//!
//! Run with: `cargo run --example provenance_search`

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use cloudprov::cloud::{AwsProfile, CloudEnv};
use cloudprov::fs::{LocalIoParams, PaS3fs};
use cloudprov::pass::{PNodeId, Pid, ProcessInfo, ProvGraph};
use cloudprov::sim::Sim;
use cloudprov::{Protocol, ProvenanceClient};

/// Provenance bonus after `rounds` traversal steps: every node reachable
/// within `rounds` hops of a content hit (over provenance edges in either
/// direction) collects weight from that hit, attenuated by distance —
/// Shah's scheme of iteratively updating weights along provenance links.
fn provenance_bonus(
    g: &ProvGraph,
    hits: &[(PNodeId, f64)],
    rounds: usize,
) -> BTreeMap<PNodeId, f64> {
    let mut bonus: BTreeMap<PNodeId, f64> = BTreeMap::new();
    for (hit, weight) in hits {
        // BFS out to `rounds` hops.
        let mut dist: BTreeMap<PNodeId, usize> = BTreeMap::new();
        let mut q = VecDeque::from([(*hit, 0usize)]);
        let mut seen = BTreeSet::from([*hit]);
        while let Some((n, d)) = q.pop_front() {
            if d > 0 {
                dist.insert(n, d);
            }
            if d == rounds {
                continue;
            }
            for m in g.deps(n).iter().chain(g.rdeps(n).iter()) {
                if seen.insert(*m) {
                    q.push_back((*m, d + 1));
                }
            }
        }
        for (n, d) in dist {
            *bonus.entry(n).or_default() += weight / d as f64;
        }
    }
    bonus
}

fn main() {
    // A small document workspace with provenance, captured through the
    // facade: a report derives from experiment notes; slides derive from
    // the report; an unrelated shopping list happens to share the search
    // keyword. A pipelined P2 session stores it all in the cloud while
    // the clients keep working.
    let sim = Sim::new();
    let env = CloudEnv::new(&sim, AwsProfile::instant());
    let client = Arc::new(
        ProvenanceClient::builder(Protocol::P2)
            .pipelined()
            .build(&env),
    );
    let fs = PaS3fs::attach(client.clone(), LocalIoParams::instant(), 3);

    fs.exec(
        Pid(1),
        ProcessInfo {
            name: "latex".into(),
            ..Default::default()
        },
    );
    fs.read(Pid(1), "/docs/experiment-notes.txt", 8 << 10);
    fs.write(Pid(1), "/docs/quarterly-report.pdf", 64 << 10);
    fs.close(Pid(1), "/docs/quarterly-report.pdf")
        .expect("close");

    fs.exec(
        Pid(2),
        ProcessInfo {
            name: "pandoc".into(),
            ..Default::default()
        },
    );
    fs.read(Pid(2), "/docs/quarterly-report.pdf", 64 << 10);
    fs.write(Pid(2), "/docs/review-slides.pdf", 32 << 10);
    fs.close(Pid(2), "/docs/review-slides.pdf").expect("close");

    fs.exec(
        Pid(3),
        ProcessInfo {
            name: "editor".into(),
            ..Default::default()
        },
    );
    fs.write(Pid(3), "/docs/shopping-list.txt", 4 << 10);
    fs.close(Pid(3), "/docs/shopping-list.txt").expect("close");

    client.drain().expect("drain");

    let (g, report, slides, notes, shopping) = fs
        .with_observer(|obs| {
            (
                obs.graph().clone(),
                obs.file_node("/docs/quarterly-report.pdf").unwrap(),
                obs.file_node("/docs/review-slides.pdf").unwrap(),
                obs.file_node("/docs/experiment-notes.txt").unwrap(),
                obs.file_node("/docs/shopping-list.txt").unwrap(),
            )
        })
        .expect("provenance-aware fs");

    // Content search for "quarterly": the report AND the slides match (the
    // slides embed the report's title page); so does the shopping list, by
    // keyword accident. All tie on content score.
    let hits = [(report, 1.0), (slides, 1.0), (shopping, 1.0)];
    println!("content-only scores (tie — content cannot rank these):");
    println!("  quarterly-report.pdf  1.000");
    println!("  review-slides.pdf     1.000");
    println!("  shopping-list.txt     1.000");

    // P = 3 provenance-traversal rounds.
    let bonus = provenance_bonus(&g, &hits, 3);
    let score = |id: PNodeId, content: f64| content + bonus.get(&id).copied().unwrap_or(0.0);

    let mut scored = vec![
        ("quarterly-report.pdf", score(report, 1.0)),
        ("review-slides.pdf", score(slides, 1.0)),
        ("shopping-list.txt", score(shopping, 1.0)),
        ("experiment-notes.txt", score(notes, 0.0)), // no content match!
    ];
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nafter 3 provenance rounds (content + provenance bonus):");
    for (name, s) in &scored {
        println!("  {name:<24} {s:.3}");
    }

    // The report and slides reinforce each other through their shared
    // lineage; the shopping list, provenance-isolated from every other
    // hit, stays at its content score. The notes — which never matched the
    // query — enter the result set through provenance alone, exactly the
    // improvement Shah et al. report for desktop search.
    assert!(score(report, 1.0) > score(shopping, 1.0));
    assert!(score(slides, 1.0) > score(shopping, 1.0));
    assert!(
        score(notes, 0.0) > 0.0,
        "notes join the results via lineage"
    );
    println!("\n=> provenance breaks the tie and surfaces a missed document");
}
