//! The paper's §2.2 "Detect and Avoid Faulty Data Propagation" use case.
//!
//! A pipeline processes a calibration file into derived data sets. The
//! calibration later turns out to be wrong. Provenance answers the urgent
//! question: *how far did the faulty data propagate?* — with a transitive
//! descendants query (the paper's Q.4) against the cloud store.
//!
//! Run with: `cargo run --example faulty_data_propagation`

use std::sync::Arc;

use cloudprov::cloud::{AwsProfile, CloudEnv, RunContext};
use cloudprov::fs::{LocalIoParams, PaS3fs};
use cloudprov::pass::{Pid, ProcessInfo};
use cloudprov::query::Mode;
use cloudprov::sim::Sim;
use cloudprov::{Protocol, ProvenanceClient, ProvenanceQueries};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Sim::new();
    let env = CloudEnv::new(&sim, AwsProfile::calibrated(RunContext::default()));
    let client = Arc::new(ProvenanceClient::builder(Protocol::P2).build(&env));
    let fs = PaS3fs::attach(client.clone(), LocalIoParams::default(), 11);

    // Stage 0: a calibration tool writes the (as it turns out, faulty)
    // calibration table.
    fs.exec(
        Pid(1),
        ProcessInfo {
            name: "calibrate".into(),
            argv: vec![
                "calibrate".into(),
                "-o".into(),
                "/lab/calibration.tbl".into(),
            ],
            ..Default::default()
        },
    );
    fs.write(Pid(1), "/lab/calibration.tbl", 64 << 10);
    fs.close(Pid(1), "/lab/calibration.tbl")?;

    // Stage 1: three reductions use the calibration.
    for i in 0..3u64 {
        let pid = Pid(10 + i);
        fs.exec(
            pid,
            ProcessInfo {
                name: "reduce".into(),
                argv: vec!["reduce".into(), format!("--run={i}")],
                ..Default::default()
            },
        );
        fs.read(pid, "/lab/calibration.tbl", 64 << 10);
        fs.read(pid, &format!("/lab/raw/run{i}.dat"), 4 << 20);
        fs.write(pid, &format!("/lab/reduced/run{i}.dat"), 1 << 20);
        fs.close(pid, &format!("/lab/reduced/run{i}.dat"))?;
    }

    // Stage 2: a summary derives from two of the reductions.
    fs.exec(
        Pid(20),
        ProcessInfo {
            name: "summarize".into(),
            argv: vec!["summarize".into()],
            ..Default::default()
        },
    );
    fs.read(Pid(20), "/lab/reduced/run0.dat", 1 << 20);
    fs.read(Pid(20), "/lab/reduced/run1.dat", 1 << 20);
    fs.write(Pid(20), "/lab/summary.csv", 128 << 10);
    fs.close(Pid(20), "/lab/summary.csv")?;

    // An unrelated data set exists too.
    fs.exec(
        Pid(30),
        ProcessInfo {
            name: "unrelated".into(),
            ..Default::default()
        },
    );
    fs.write(Pid(30), "/lab/unrelated.dat", 1 << 20);
    fs.close(Pid(30), "/lab/unrelated.dat")?;

    // --- The calibration is discovered to be faulty. Chase descendants
    //     through the CLOUD provenance store (Q.4 machinery). Let the
    //     eventually consistent services converge first. ---
    sim.sleep(std::time::Duration::from_secs(15));
    let engine = client.query()?;
    let tainted = engine.q4_descendants_of("calibrate", Mode::Parallel)?;

    println!(
        "descendants of the faulty calibration ({} ops, {:?}):",
        tainted.metrics.ops, tainted.metrics.elapsed
    );
    // Resolve names for the affected file versions.
    let all = engine.q1_all(Mode::Parallel)?;
    let mut affected_files = std::collections::BTreeSet::new();
    for node in &tainted.nodes {
        for r in all.records.iter().filter(|r| r.subject == *node) {
            if r.attr == cloudprov::pass::Attr::Name {
                let name = r.value.to_text();
                if name.starts_with("/lab/") {
                    affected_files.insert(name);
                }
            }
        }
    }
    for f in &affected_files {
        println!("  TAINTED: {f}");
    }
    assert!(affected_files.iter().any(|f| f.contains("reduced/run0")));
    assert!(affected_files.iter().any(|f| f.contains("summary.csv")));
    assert!(!affected_files.iter().any(|f| f.contains("unrelated")));
    println!("\n=> recall every derived data set; the unrelated one is untouched");
    Ok(())
}
