//! The paper's §2.2 "Debug Experimental Results" use case.
//!
//! SDSS-style scenario: administrators silently upgrade the JVM on the
//! compute image; a researcher's pipeline starts producing flawed output.
//! Without provenance the change is invisible. With provenance, diffing
//! the lineage of a good output against a bad one surfaces the new JVM
//! immediately.
//!
//! Run with: `cargo run --example sdss_debug`

use std::sync::Arc;

use cloudprov::cloud::{AwsProfile, CloudEnv, RunContext};
use cloudprov::fs::{LocalIoParams, PaS3fs};
use cloudprov::pass::{Attr, Pid, ProcessInfo};
use cloudprov::sim::Sim;
use cloudprov::{Protocol, ProvenanceClient};

fn run_pipeline(fs: &PaS3fs, pid: u64, jvm: &str, output: &str) {
    fs.exec(
        Pid(pid),
        ProcessInfo {
            name: "photo-pipeline".into(),
            argv: vec![
                "java".into(),
                "-jar".into(),
                "sdss-reduce.jar".into(),
                output.into(),
            ],
            env: vec![("JAVA_HOME".into(), jvm.into())],
            exe_path: Some(jvm.to_string() + "/bin/java"),
            ..Default::default()
        },
    );
    fs.read(Pid(pid), "/sdss/raw/frame-001.fits", 8 << 20);
    fs.read(Pid(pid), "/sdss/calib/flatfield.fits", 1 << 20);
    fs.write(Pid(pid), output, 2 << 20);
    fs.close(Pid(pid), output).expect("flush");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Sim::new();
    let env = CloudEnv::new(&sim, AwsProfile::calibrated(RunContext::default()));
    let client = Arc::new(ProvenanceClient::builder(Protocol::P2).build(&env));
    let fs = PaS3fs::attach(client, LocalIoParams::default(), 7);

    // Monday: results are good.
    run_pipeline(&fs, 200, "/opt/jvm-1.5.0_16", "/sdss/out/monday.fits");
    // Admins upgrade the JVM overnight, unbeknownst to the researcher.
    // Tuesday: results look flawed.
    run_pipeline(&fs, 201, "/opt/jvm-1.6.0_07", "/sdss/out/tuesday.fits");

    // Debug by diffing provenance: compare the ancestor closures of the
    // two outputs in the ground-truth DAG PASS collected.
    let diff = fs
        .with_observer(|obs| {
            let g = obs.graph();
            let monday = obs.file_node("/sdss/out/monday.fits").unwrap();
            let tuesday = obs.file_node("/sdss/out/tuesday.fits").unwrap();
            let attrs_of = |id| {
                let mut set = std::collections::BTreeSet::new();
                for a in g.ancestors(id).into_iter().chain([id]) {
                    if let Some(node) = g.node(a) {
                        for (attr, value) in &node.attrs {
                            if matches!(attr, Attr::Env | Attr::Name | Attr::Argv) {
                                set.insert(format!("{attr}={value}"));
                            }
                        }
                    }
                }
                set
            };
            let a = attrs_of(monday);
            let b = attrs_of(tuesday);
            let only_tuesday: Vec<String> = b.difference(&a).cloned().collect();
            let only_monday: Vec<String> = a.difference(&b).cloned().collect();
            (only_monday, only_tuesday)
        })
        .expect("provenance-aware fs");

    println!("provenance diff of monday.fits vs tuesday.fits");
    println!("  only in monday's lineage:");
    for line in &diff.0 {
        println!("    - {line}");
    }
    println!("  only in tuesday's lineage:");
    for line in &diff.1 {
        println!("    + {line}");
    }

    // The JVM change is immediately visible.
    assert!(diff.1.iter().any(|l| l.contains("jvm-1.6.0_07")));
    assert!(diff.0.iter().any(|l| l.contains("jvm-1.5.0_16")));
    println!("\n=> the silent JVM upgrade is exposed by the provenance diff");
    Ok(())
}
