//! P3's crash-tolerance story (§4.3.3): the write-ahead log lives in SQS,
//! not on the client's disk — so when the client dies after logging a
//! transaction but before committing it, *any other machine* can finish
//! the job. Incompletely-logged transactions are ignored and their
//! temporary objects reaped by the cleaner daemon.
//!
//! Everything goes through the `ProvenanceClient` facade: crash injection
//! is a builder knob (`step_hook`), and the recovery machine only needs
//! the dead client's WAL URL.
//!
//! Run with: `cargo run --example crash_recovery`

use std::sync::Arc;
use std::time::Duration;

use cloudprov::cloud::{AwsProfile, Blob, CloudEnv, RunContext};
use cloudprov::pass::{Attr, FlushNode, NodeKind, PNodeId, ProvenanceRecord, Uuid};
use cloudprov::protocols::{
    CommitDaemon, FlushBatch, FlushObject, ProtocolConfig, ProtocolError, StorageProtocol,
};
use cloudprov::sim::Sim;
use cloudprov::{Protocol, ProvenanceClient};

fn file_object(uuid: u128, key: &str, payload: &str) -> FlushObject {
    let id = PNodeId::initial(Uuid(uuid));
    let blob = Blob::from(payload);
    FlushObject::file(
        FlushNode {
            id,
            kind: NodeKind::File,
            name: Some(format!("/{key}")),
            records: vec![
                ProvenanceRecord::new(id, Attr::Type, "file"),
                ProvenanceRecord::new(id, Attr::Name, key),
                ProvenanceRecord::new(
                    id,
                    Attr::DataHash,
                    format!("{:016x}", blob.content_fingerprint()),
                ),
            ],
            data_hash: Some(blob.content_fingerprint()),
        },
        key,
        blob,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = Sim::new();
    let env = CloudEnv::new(&sim, AwsProfile::calibrated(RunContext::default()));

    // --- Client A: completes its log phase, then "crashes" before any
    //     commit daemon runs (we simply never start its daemon). ---
    let client_a = ProvenanceClient::builder(Protocol::P3)
        .queue("wal-client-a")
        .build(&env);
    client_a.flush(FlushBatch {
        objects: vec![file_object(1, "results/complete.dat", "fully logged")],
    })?;
    let wal_a = client_a.wal_url().expect("P3 session").to_string();
    println!("client A logged its transaction, then died");
    drop(client_a);

    // --- Client B: crashes MID-log (after the temp PUT, before the WAL
    //     messages), leaving an orphaned temporary object. ---
    let client_b = ProvenanceClient::builder(Protocol::P3)
        .queue("wal-client-b")
        .step_hook(Arc::new(|step: &str| !step.starts_with("p3:wal:")))
        .build(&env);
    let err = client_b
        .flush(FlushBatch {
            objects: vec![file_object(2, "results/partial.dat", "never fully logged")],
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::Crashed { .. }));
    println!("client B crashed mid-log: {err}");
    println!(
        "orphaned temp objects in the store: {}",
        env.s3().peek_count("data", "tmp/")
    );

    // --- A recovery machine drains client A's WAL and commits. ---
    let recovery = CommitDaemon::new(&env, ProtocolConfig::default(), &wal_a);
    let committed = recovery.run_until_idle()?;
    println!("recovery machine committed {committed} transaction(s) from A's WAL");
    assert_eq!(committed, 1);
    assert!(env
        .s3()
        .peek_committed("data", "results/complete.dat")
        .is_some());
    // Client B's partial transaction was never committed.
    assert!(env
        .s3()
        .peek_committed("data", "results/partial.dat")
        .is_none());

    // --- The cleaner daemon reaps B's orphan after the 4-day window. ---
    let cleaner = ProvenanceClient::builder(Protocol::P3)
        .queue("wal-cleaner")
        .build(&env)
        .cleaner_daemon()
        .expect("P3 session");
    assert_eq!(cleaner.clean_once()?, 0, "too young to reap");
    sim.sleep(Duration::from_secs(4 * 24 * 3600 + 60));
    let reaped = cleaner.clean_once()?;
    println!("cleaner reaped {reaped} orphaned temp object(s) after 4 days");
    assert!(env.s3().peek_count("data", "tmp/") == 0);

    println!("\n=> complete WAL transactions survive client death; partial ones vanish");
    Ok(())
}
